package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func drawMany(d Dist, n int, seed uint64) []Cycles {
	r := NewRNG(seed)
	out := make([]Cycles, n)
	for i := range out {
		out[i] = d.Draw(r)
	}
	return out
}

func meanOf(xs []Cycles) float64 {
	var sum float64
	for _, x := range xs {
		sum += float64(x)
	}
	return sum / float64(len(xs))
}

func TestConstantDist(t *testing.T) {
	d := Constant(1234)
	for _, v := range drawMany(d, 10, 1) {
		if v != 1234 {
			t.Fatalf("constant drew %d", v)
		}
	}
	if d.Mean() != 1234 {
		t.Fatalf("mean = %v", d.Mean())
	}
}

func TestUniformDistBoundsAndMean(t *testing.T) {
	d := Uniform{Lo: 100, Hi: 200}
	xs := drawMany(d, 20000, 2)
	for _, x := range xs {
		if x < 100 || x > 200 {
			t.Fatalf("uniform drew %d outside [100,200]", x)
		}
	}
	if m := meanOf(xs); math.Abs(m-150) > 2 {
		t.Fatalf("uniform mean %v, want ~150", m)
	}
	if d.Mean() != 150 {
		t.Fatalf("analytic mean %v", d.Mean())
	}
}

func TestUniformDegenerate(t *testing.T) {
	d := Uniform{Lo: 7, Hi: 7}
	if v := d.Draw(NewRNG(1)); v != 7 {
		t.Fatalf("degenerate uniform drew %d", v)
	}
}

func TestExponentialDist(t *testing.T) {
	d := Exponential{MeanCycles: 1000}
	xs := drawMany(d, 50000, 3)
	if m := meanOf(xs); math.Abs(m-1000) > 30 {
		t.Fatalf("exp mean %v, want ~1000", m)
	}
	for _, x := range xs {
		if x < 0 {
			t.Fatalf("exp drew negative %d", x)
		}
	}
}

func TestExponentialCap(t *testing.T) {
	d := Exponential{MeanCycles: 1000, Cap: 1500}
	for _, x := range drawMany(d, 20000, 4) {
		if x > 1500 {
			t.Fatalf("capped exp drew %d", x)
		}
	}
}

func TestParetoTailHeavierThanExponential(t *testing.T) {
	// With matched medians, Pareto(alpha=1.2) should produce far more
	// >50x-median draws than an exponential. This property is what lets the
	// personality profiles reproduce Figure 4's long thin tails.
	p := Pareto{Xm: 1000, Alpha: 1.2}
	e := Exponential{MeanCycles: 1700}
	count := func(xs []Cycles, above Cycles) int {
		n := 0
		for _, x := range xs {
			if x > above {
				n++
			}
		}
		return n
	}
	ps := drawMany(p, 100000, 5)
	es := drawMany(e, 100000, 6)
	if cp, ce := count(ps, 50000), count(es, 50000); cp <= ce*5 {
		t.Fatalf("pareto tail %d not much heavier than exp tail %d", cp, ce)
	}
}

func TestParetoRespectsBounds(t *testing.T) {
	d := Pareto{Xm: 500, Alpha: 1.5, Cap: 9000}
	for _, x := range drawMany(d, 50000, 7) {
		if x < 500 || x > 9000 {
			t.Fatalf("bounded pareto drew %d outside [500,9000]", x)
		}
	}
}

func TestParetoMean(t *testing.T) {
	d := Pareto{Xm: 1000, Alpha: 2}
	if m := d.Mean(); m != 2000 {
		t.Fatalf("pareto mean %v, want 2000", m)
	}
	heavy := Pareto{Xm: 1000, Alpha: 0.9, Cap: 5000}
	if m := heavy.Mean(); m != 5000 {
		t.Fatalf("heavy pareto reported mean %v, want cap 5000", m)
	}
}

func TestLogNormalPositive(t *testing.T) {
	d := LogNormal{Mu: 7, Sigma: 1.5, Cap: 1 << 30}
	for _, x := range drawMany(d, 20000, 8) {
		if x < 0 {
			t.Fatalf("lognormal drew negative %d", x)
		}
	}
	if d.Mean() <= 0 {
		t.Fatalf("lognormal mean %v", d.Mean())
	}
}

func TestMixtureWeights(t *testing.T) {
	m := NewMixture(
		[]Dist{Constant(1), Constant(1000)},
		[]float64{0.99, 0.01},
	)
	xs := drawMany(m, 100000, 9)
	big := 0
	for _, x := range xs {
		if x == 1000 {
			big++
		} else if x != 1 {
			t.Fatalf("mixture drew unexpected %d", x)
		}
	}
	frac := float64(big) / float64(len(xs))
	if frac < 0.007 || frac > 0.013 {
		t.Fatalf("rare component frequency %v, want ~0.01", frac)
	}
	if want := 0.99*1 + 0.01*1000; math.Abs(m.Mean()-want) > 1e-9 {
		t.Fatalf("mixture mean %v, want %v", m.Mean(), want)
	}
}

func TestMixtureValidation(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s should panic", name)
			}
		}()
		fn()
	}
	assertPanics("empty", func() { NewMixture(nil, nil) })
	assertPanics("mismatch", func() { NewMixture([]Dist{Constant(1)}, []float64{1, 2}) })
	assertPanics("negative", func() { NewMixture([]Dist{Constant(1)}, []float64{-1}) })
	assertPanics("zero-sum", func() { NewMixture([]Dist{Constant(1)}, []float64{0}) })
}

func TestEmpiricalDist(t *testing.T) {
	e := NewEmpirical([]Cycles{5, 1, 3})
	seen := map[Cycles]bool{}
	for _, x := range drawMany(e, 1000, 10) {
		seen[x] = true
		if x != 1 && x != 3 && x != 5 {
			t.Fatalf("empirical drew %d", x)
		}
	}
	if len(seen) != 3 {
		t.Fatalf("empirical did not cover all samples: %v", seen)
	}
	if m := e.Mean(); m != 3 {
		t.Fatalf("empirical mean %v", m)
	}
	if q := e.Quantile(0); q != 1 {
		t.Fatalf("q0 = %d", q)
	}
	if q := e.Quantile(1); q != 5 {
		t.Fatalf("q1 = %d", q)
	}
	if q := e.Quantile(0.5); q != 3 {
		t.Fatalf("q0.5 = %d", q)
	}
}

func TestScaledDist(t *testing.T) {
	s := Scaled{Base: Constant(100), Factor: 2.5}
	if v := s.Draw(NewRNG(1)); v != 250 {
		t.Fatalf("scaled drew %d", v)
	}
	if s.Mean() != 250 {
		t.Fatalf("scaled mean %v", s.Mean())
	}
}

// Property: no distribution ever returns a negative duration.
func TestQuickDistributionsNonNegative(t *testing.T) {
	dists := []Dist{
		Constant(0),
		Uniform{Lo: 0, Hi: 1 << 20},
		Exponential{MeanCycles: 5000},
		Pareto{Xm: 100, Alpha: 1.1, Cap: 1 << 30},
		LogNormal{Mu: 5, Sigma: 2, Cap: 1 << 30},
		Scaled{Base: Exponential{MeanCycles: 100}, Factor: 0.5},
	}
	for _, d := range dists {
		d := d
		f := func(seed uint64) bool {
			r := NewRNG(seed)
			for i := 0; i < 64; i++ {
				if d.Draw(r) < 0 {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%s produced a negative draw: %v", d, err)
		}
	}
}

// Property: the RNG stream is reproducible from the seed and Split streams
// do not alias the parent stream.
func TestQuickRNGReproducible(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := NewRNG(seed), NewRNG(seed)
		for i := 0; i < 16; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(99)
	child := parent.Split()
	// The child stream should differ from the parent's subsequent stream.
	same := 0
	for i := 0; i < 64; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("parent and split child streams coincide %d/64 times", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(11)
	var sum, sum2 float64
	n := 200000
	for i := 0; i < n; i++ {
		v := r.Norm(10, 3)
		sum += v
		sum2 += v * v
	}
	mean := sum / float64(n)
	variance := sum2/float64(n) - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("norm mean %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.05 {
		t.Fatalf("norm stddev %v, want ~3", math.Sqrt(variance))
	}
}
