// Causeanalysis: drive the §2.3 latency cause tool by hand. The tool
// patches the PIT vector of the simulated IDT (a Windows 9x legacy
// interface), records what was on-CPU at every clock interrupt, and dumps
// the ring whenever the measurement driver reports a long thread latency —
// yielding module+function traces like Table 4 "in spite of the lack of
// source code".
package main

import (
	"fmt"
	"os"
	"time"

	"wdmlat/internal/causetool"
	"wdmlat/internal/latdriver"
	"wdmlat/internal/ospersona"
	"wdmlat/internal/sim"
	"wdmlat/internal/workload"
)

func main() {
	m := ospersona.Build(ospersona.Win98, ospersona.Options{
		Seed:        3,
		SoundScheme: true, // the Table 4 configuration
	})
	defer m.Shutdown()

	if !m.Profile.SupportsLegacyTimerHook {
		fmt.Println("this OS does not allow IDT patching without source access")
		return
	}

	// Attach the cause tool: hook the PIT vector, 64-sample ring, 6 ms
	// episode threshold.
	cause := causetool.Attach(m.Kernel, causetool.Options{
		RingSize:  64,
		Threshold: m.MS(6),
	})
	defer cause.Detach()

	// The latency measurement driver provides the trigger signal.
	tool, err := latdriver.Install(m.Kernel, m.PIT, latdriver.Options{
		HookTimerISR: true,
		OnThreadLatency: func(priority int, lat sim.Cycles) {
			cause.OnLatency(lat)
		},
	})
	if err != nil {
		panic(err)
	}
	if err := tool.Start(); err != nil {
		panic(err)
	}

	// Tools first, then the benchmark (§3.1.1).
	m.RunFor(m.Freq().Cycles(200 * time.Millisecond))
	gen := workload.New(workload.Business, m)
	gen.Start()
	m.RunFor(m.Freq().Cycles(4 * time.Minute))
	gen.Stop()
	tool.Stop()

	fmt.Printf("hook samples: %d; long-latency triggers: %d; episodes kept: %d\n\n",
		cause.Samples(), cause.Triggered(), len(cause.Episodes()))
	eps := cause.Episodes()
	if len(eps) > 3 {
		eps = eps[:3]
	}
	for i, ep := range eps {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("(latency %.1f ms)\n", m.Freq().Millis(ep.Latency))
		if err := ep.Format(os.Stdout); err != nil {
			panic(err)
		}
	}
}
