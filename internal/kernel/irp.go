package kernel

import "wdmlat/internal/sim"

// IRP is an I/O request packet. The paper's control application exchanges
// IRPs with the measurement driver via ReadFileEx; the driver writes the
// three captured time stamps into the system buffer and completes the
// request (§2.2). ASB mirrors IRP->AssociatedIrp.SystemBuffer, which the
// paper "pretends is of type LARGE_INTEGER" — slot 0 is the I/O-read TSC,
// slot 1 the DPC TSC, slot 2 the thread TSC.
type IRP struct {
	ASB [4]sim.Time
	Tag any

	// OnComplete is invoked by IoCompleteRequest. It stands in for the
	// user-mode completion routine of ReadFileEx.
	OnComplete func(irp *IRP, completedAt sim.Time)

	completed   bool
	createdAt   sim.Time
	completedAt sim.Time
}

// NewIRP allocates a request packet stamped with its creation time,
// reusing a pooled packet when one is available.
func (k *Kernel) NewIRP() *IRP {
	if n := len(k.irpFree); n > 0 {
		irp := k.irpFree[n-1]
		k.irpFree[n-1] = nil
		k.irpFree = k.irpFree[:n-1]
		*irp = IRP{createdAt: k.now()}
		return irp
	}
	return &IRP{createdAt: k.now()}
}

// FreeIRP returns a completed packet to the kernel's pool. The caller
// relinquishes the handle: a freed IRP may be handed out again by the
// next NewIRP, so no field may be read or written after the call. It is
// legal to free the packet from inside its own OnComplete routine —
// completion touches nothing after the callback returns. Freeing an
// uncompleted packet panics.
func (k *Kernel) FreeIRP(irp *IRP) {
	if !irp.completed {
		panic("kernel: FreeIRP of uncompleted IRP")
	}
	irp.OnComplete = nil
	irp.Tag = nil
	k.irpFree = append(k.irpFree, irp)
}

// Completed reports whether the IRP has been completed.
func (irp *IRP) Completed() bool { return irp.completed }

// CompletedAt returns when the IRP completed (zero if not yet).
func (irp *IRP) CompletedAt() sim.Time { return irp.completedAt }

// completeIrp is IoCompleteRequest: mark the packet done and deliver it to
// its originator. Completing an already-completed IRP panics — the real
// bug check (MULTIPLE_IRP_COMPLETE_REQUESTS) is fatal too.
func (k *Kernel) completeIrp(irp *IRP) {
	if irp.completed {
		panic("kernel: IRP completed twice")
	}
	irp.completed = true
	irp.completedAt = k.now()
	if irp.OnComplete != nil {
		irp.OnComplete(irp, irp.completedAt)
	}
}

// CompleteIrp completes an IRP from simulation-harness context.
func (k *Kernel) CompleteIrp(irp *IRP) {
	k.completeIrp(irp)
	k.maybeRun()
}
