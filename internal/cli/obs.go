package cli

// Obs is the observability surface shared by the experiment binaries: a
// metrics registry for the campaign runner and checkpoint store, a
// periodic progress reporter (-progress), a final telemetry snapshot
// (-telemetry out.json), and the stdlib profiling hooks (-cpuprofile,
// -memprofile, -pprof). All of it is out-of-band with respect to the
// simulation: the artifacts a binary writes are byte-identical whether
// these flags are set or not.

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // -pprof registers the profiling handlers on DefaultServeMux
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"wdmlat/internal/campaign"
	"wdmlat/internal/metrics"
)

// progressInterval is how often -progress reports. A var so tests can
// shorten it.
var progressInterval = 2 * time.Second

// Obs bundles the observability flags, the metrics registry and the
// lifecycle of the profiling hooks for one binary. Create with NewObs
// before flag parsing, Start after it, and Close on exit (FailCampaign
// closes it on the failure path).
type Obs struct {
	name     string
	Registry *metrics.Registry

	progress   *bool
	telemetry  *string
	cpuprofile *string
	memprofile *string
	pprofAddr  *string

	started time.Time
	cpuOut  *os.File
	stop    chan struct{}
	wg      sync.WaitGroup
}

// NewObs registers the shared observability flags on fs (the binaries pass
// flag.CommandLine) and returns the handle that owns them. The registry is
// always live — collection costs a few atomic adds per cell — and the
// flags only control what is *reported*.
func NewObs(name string, fs *flag.FlagSet) *Obs {
	o := &Obs{name: name, Registry: metrics.NewRegistry()}
	o.progress = fs.Bool("progress", false, "periodically report campaign progress (cells done/total, throughput, ETA) on stderr")
	o.telemetry = fs.String("telemetry", "", "write the final metrics snapshot as JSON to this file")
	o.cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
	o.memprofile = fs.String("memprofile", "", "write a heap profile to this file on exit")
	o.pprofAddr = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. :6060)")
	return o
}

// Start begins profiling: it starts the CPU profile and the pprof listener
// if their flags were set. Call once, after flag parsing.
func (o *Obs) Start() error {
	o.started = time.Now()
	if *o.cpuprofile != "" {
		f, err := os.Create(*o.cpuprofile)
		if err != nil {
			return fmt.Errorf("%s: cpuprofile: %w", o.name, err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("%s: cpuprofile: %w", o.name, err)
		}
		o.cpuOut = f
	}
	if addr := *o.pprofAddr; addr != "" {
		fmt.Fprintf(os.Stderr, "%s: pprof listening on %s\n", o.name, addr)
		go func() {
			// The listener lives for the process; an unusable address is
			// reported, not fatal — profiling must never take a campaign down.
			if err := http.ListenAndServe(addr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "%s: pprof: %v\n", o.name, err)
			}
		}()
	}
	return nil
}

// StartProgress begins the periodic -progress reporter polling run. A
// no-op unless -progress was set.
func (o *Obs) StartProgress(run *campaign.Runner) {
	if !*o.progress || run == nil || o.stop != nil {
		return
	}
	o.stop = make(chan struct{})
	o.wg.Add(1)
	go func() {
		defer o.wg.Done()
		t := time.NewTicker(progressInterval)
		defer t.Stop()
		for {
			select {
			case <-o.stop:
				return
			case <-t.C:
				fmt.Fprintln(os.Stderr, o.progressLine(run))
			}
		}
	}()
}

// progressLine formats one progress report: completed/total cells,
// cell throughput, and an ETA projected from the per-cell wall-time
// histogram spread across the pool width.
func (o *Obs) progressLine(run *campaign.Runner) string {
	done, total := run.Progress()
	elapsed := time.Since(o.started)
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(done) / float64(total)
	}
	tput := 0.0
	if elapsed > 0 {
		tput = float64(done) / elapsed.Seconds()
	}
	eta := "?"
	if total > 0 && done >= total {
		eta = "0s"
	} else if mean := o.Registry.Histogram(campaign.MetricCellWallTime).Mean(); mean > 0 && done < total {
		jobs := run.Jobs()
		if jobs < 1 {
			jobs = 1
		}
		left := time.Duration(float64(total-done) / float64(jobs) * float64(mean))
		eta = left.Round(time.Second).String()
	}
	return fmt.Sprintf("%s: %d/%d cells (%.0f%%), %.1f cells/s, ETA %s",
		o.name, done, total, pct, tput, eta)
}

// Close flushes everything the flags asked for: it stops the progress
// reporter (emitting nothing further), stops the CPU profile, writes the
// heap profile, and writes the telemetry snapshot. The first error is
// returned; later steps still run, so a failed heap profile cannot lose
// the telemetry snapshot.
func (o *Obs) Close() error {
	var first error
	keep := func(err error) {
		if first == nil && err != nil {
			first = err
		}
	}
	if o.stop != nil {
		close(o.stop)
		o.wg.Wait()
		o.stop = nil
	}
	if o.cpuOut != nil {
		pprof.StopCPUProfile()
		keep(o.cpuOut.Close())
		o.cpuOut = nil
	}
	if *o.memprofile != "" {
		f, err := os.Create(*o.memprofile)
		if err != nil {
			keep(fmt.Errorf("%s: memprofile: %w", o.name, err))
		} else {
			runtime.GC() // materialize up-to-date allocation statistics
			keep(pprof.WriteHeapProfile(f))
			keep(f.Close())
		}
		*o.memprofile = "" // idempotent: FailCampaign and defer may both Close
	}
	if *o.telemetry != "" {
		f, err := os.Create(*o.telemetry)
		if err != nil {
			keep(fmt.Errorf("%s: telemetry: %w", o.name, err))
		} else {
			keep(o.Registry.WriteJSON(f))
			keep(f.Close())
		}
		*o.telemetry = ""
	}
	return first
}
