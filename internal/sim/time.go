// Package sim provides the discrete-event simulation substrate on which the
// virtual machine, the WDM kernel and the workloads are built: a virtual
// clock measured in CPU cycles, a cancellable event queue with deterministic
// ordering, a seedable random number generator, and a library of latency
// distributions.
//
// Everything in the simulator is deterministic: given the same seed and the
// same configuration, a run produces bit-identical results. No wall-clock
// time is consulted anywhere.
package sim

import (
	"fmt"
	"time"
)

// Time is an absolute point in virtual time, measured in CPU cycles since
// machine power-on. It plays the role of the Pentium time stamp counter
// (TSC) that the paper's measurement drivers read with RDTSC.
type Time int64

// Cycles is a span of virtual time in CPU cycles.
type Cycles int64

// Add returns the time c cycles after t.
func (t Time) Add(c Cycles) Time { return t + Time(c) }

// Sub returns the number of cycles from u to t.
func (t Time) Sub(u Time) Cycles { return Cycles(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// Freq is a clock frequency in Hz. The paper's test system is a 300 MHz
// Pentium II (Table 2), so that is the package default.
type Freq int64

// DefaultFreq is the clock frequency of the paper's test machine.
const DefaultFreq Freq = 300_000_000 // 300 MHz Pentium II

// Cycles converts a duration to cycles at frequency f, rounding to nearest.
func (f Freq) Cycles(d time.Duration) Cycles {
	if f <= 0 {
		panic("sim: non-positive frequency")
	}
	// cycles = d * f / 1e9, computed to avoid overflow for realistic values
	// (d up to days, f up to a few GHz fits in int64 via big-ish splitting).
	sec := int64(d) / int64(time.Second)
	rem := int64(d) % int64(time.Second)
	return Cycles(sec*int64(f) + rem*int64(f)/int64(time.Second))
}

// Duration converts a cycle count to a time.Duration at frequency f.
func (f Freq) Duration(c Cycles) time.Duration {
	if f <= 0 {
		panic("sim: non-positive frequency")
	}
	sec := int64(c) / int64(f)
	rem := int64(c) % int64(f)
	return time.Duration(sec)*time.Second + time.Duration(rem*int64(time.Second)/int64(f))
}

// Millis converts a cycle count to floating-point milliseconds at frequency
// f. The paper reports every latency in milliseconds; this is the conversion
// used throughout the reporting layer.
func (f Freq) Millis(c Cycles) float64 {
	return float64(c) / float64(f) * 1e3
}

// FromMillis converts floating-point milliseconds to cycles at frequency f.
func (f Freq) FromMillis(ms float64) Cycles {
	return Cycles(ms / 1e3 * float64(f))
}

// String formats the frequency in human units.
func (f Freq) String() string {
	switch {
	case f >= 1_000_000_000 && f%1_000_000_000 == 0:
		return fmt.Sprintf("%d GHz", int64(f)/1_000_000_000)
	case f >= 1_000_000:
		return fmt.Sprintf("%d MHz", int64(f)/1_000_000)
	case f >= 1_000:
		return fmt.Sprintf("%d kHz", int64(f)/1_000)
	default:
		return fmt.Sprintf("%d Hz", int64(f))
	}
}
