package wdm_test

import (
	"errors"
	"testing"

	"wdmlat/internal/cpu"
	"wdmlat/internal/kernel"
	"wdmlat/internal/sim"
	"wdmlat/internal/wdm"
)

func newKernel(t *testing.T) (*sim.Engine, *kernel.Kernel) {
	t.Helper()
	eng := sim.NewEngine(1)
	c := cpu.New(eng, sim.DefaultFreq)
	k := kernel.New(eng, c, kernel.Config{Name: "test"})
	k.Boot(32, 300_000)
	t.Cleanup(k.Shutdown)
	return eng, k
}

func TestLoadRunsDriverEntry(t *testing.T) {
	_, k := newKernel(t)
	entered := false
	drv, err := wdm.Load(k, "TESTDRV", func(d *wdm.Driver) error {
		entered = true
		if d.Name() != "TESTDRV" {
			t.Errorf("name = %q", d.Name())
		}
		if d.Kernel() != k {
			t.Error("wrong kernel")
		}
		return nil
	})
	if err != nil || drv == nil {
		t.Fatalf("load: %v", err)
	}
	if !entered {
		t.Fatal("DriverEntry not called")
	}
}

func TestLoadPropagatesEntryFailure(t *testing.T) {
	_, k := newKernel(t)
	boom := errors.New("no resources")
	_, err := wdm.Load(k, "BAD", func(d *wdm.Driver) error { return boom })
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, err := wdm.Load(k, "NIL", nil); err == nil {
		t.Fatal("nil DriverEntry should fail")
	}
}

func TestReadFileExRoundTrip(t *testing.T) {
	eng, k := newKernel(t)
	drv, err := wdm.Load(k, "RT", func(d *wdm.Driver) error {
		d.MajorRead = func(irp *kernel.IRP) {
			irp.ASB[0] = d.GetCycleCount()
			// Complete asynchronously from harness context.
			eng.After(5000, "complete", func(sim.Time) {
				d.IoCompleteRequest(irp)
			})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var doneAt sim.Time
	irp, err := drv.ReadFileEx(func(i *kernel.IRP, at sim.Time) { doneAt = at })
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(100_000)
	if !irp.Completed() || doneAt != 5000 {
		t.Fatalf("completed=%v at %d", irp.Completed(), doneAt)
	}
	if irp.ASB[0] != 0 {
		t.Fatalf("read TSC = %d, want 0 at boot", irp.ASB[0])
	}
}

func TestReadWithoutDispatchFails(t *testing.T) {
	_, k := newKernel(t)
	drv, _ := wdm.Load(k, "EMPTY", func(d *wdm.Driver) error { return nil })
	if _, err := drv.ReadFileEx(nil); err == nil {
		t.Fatal("read without MajorRead should fail")
	}
}

func TestUnloadBlocksReads(t *testing.T) {
	_, k := newKernel(t)
	drv, _ := wdm.Load(k, "U", func(d *wdm.Driver) error {
		d.MajorRead = func(irp *kernel.IRP) {}
		return nil
	})
	drv.Unload()
	if _, err := drv.ReadFileEx(nil); err == nil {
		t.Fatal("read on unloaded driver should fail")
	}
}

func TestKeSetTimerUsesTickUnits(t *testing.T) {
	eng, k := newKernel(t)
	var firedAt sim.Time
	dpc := kernel.NewDPC("d", kernel.MediumImportance, func(c *kernel.DpcContext) {
		firedAt = c.Now()
	})
	drv, _ := wdm.Load(k, "TMR", func(d *wdm.Driver) error {
		tm := d.KeCreateTimer("t")
		d.KeSetTimer(tm, 3, dpc) // 3 ticks = 3 ms
		return nil
	})
	_ = drv
	// Drive the clock by hand.
	pitIntr := k.InterruptForVector(32)
	var tick func(sim.Time)
	tick = func(sim.Time) {
		pitIntr.Assert()
		eng.After(300_000, "pit", tick)
	}
	eng.After(300_000, "pit", tick)
	eng.RunUntil(3_000_000)
	if firedAt == 0 {
		t.Fatal("timer DPC never fired")
	}
	// Due at 3 ticks; the 3rd tick (t=900000) processes it.
	if firedAt < 900_000 || firedAt > 1_210_000 {
		t.Fatalf("fired at %d, want shortly after the 3rd tick", firedAt)
	}
}

func TestKeSetTimerValidation(t *testing.T) {
	_, k := newKernel(t)
	drv, _ := wdm.Load(k, "V", func(d *wdm.Driver) error { return nil })
	tm := drv.KeCreateTimer("t")
	defer func() {
		if recover() == nil {
			t.Fatal("zero-tick KeSetTimer should panic")
		}
	}()
	drv.KeSetTimer(tm, 0, nil)
}

func TestPsCreateSystemThreadStartsAtNormalPriority(t *testing.T) {
	eng, k := newKernel(t)
	var prio int
	drv, _ := wdm.Load(k, "THR", func(d *wdm.Driver) error {
		d.PsCreateSystemThread("worker", func(tc *kernel.ThreadContext) {
			prio = tc.Thread().Priority()
			tc.SetPriority(24)
		})
		return nil
	})
	_ = drv
	eng.RunUntil(1_000_000)
	if prio != kernel.NormalPriority {
		t.Fatalf("initial priority = %d, want %d (drivers raise it themselves, §2.2.4)",
			prio, kernel.NormalPriority)
	}
}

func TestKeCreateEventKinds(t *testing.T) {
	_, k := newKernel(t)
	drv, _ := wdm.Load(k, "EV", func(d *wdm.Driver) error { return nil })
	sync := drv.KeCreateEvent("s", kernel.SynchronizationEvent)
	notif := drv.KeCreateEvent("n", kernel.NotificationEvent)
	if sync.Kind != kernel.SynchronizationEvent || notif.Kind != kernel.NotificationEvent {
		t.Fatal("event kinds not honored")
	}
	if sync.Name != "EV.s" {
		t.Fatalf("event name = %q, want driver-prefixed", sync.Name)
	}
}
