package server

// The distribution theorem, tested as a property: a campaign's result
// stream is byte-identical whether its cells ran in one process or were
// sharded across N workers — for every fleet size 1..16, under seeded
// join/leave churn where workers die mid-lease and replacements take over.
// The coordinator may change *who* computes a cell, never *what* the cell
// is, so the merged bytes must be invariant across every interleaving.
//
// Two layers: TestFleetShardingByteIdentical drives the Coordinator
// directly with fabricated in-process workers (instant, exhaustive over
// fleet sizes), and TestFleetHTTPByteIdenticalWithWorkerKill runs the real
// simulator through the full HTTP stack — latserved fleet handlers, the
// client worker loop, a worker killed mid-campaign — and compares against
// a local run.

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"wdmlat/internal/api"
	"wdmlat/internal/campaign"
	"wdmlat/internal/client"
	"wdmlat/internal/core"
	"wdmlat/internal/metrics"
	"wdmlat/internal/ospersona"
	"wdmlat/internal/workload"
)

// shardCells builds a campaign matrix of distinguishable fabricated cells.
func shardCells(n int) []campaign.Cell {
	oses := []ospersona.OS{ospersona.NT4, ospersona.Win98}
	classes := []workload.Class{workload.Business, workload.Games, workload.Web}
	cells := make([]campaign.Cell, n)
	for i := range cells {
		cells[i] = campaign.Cell{
			Key: fmt.Sprintf("shard/cell/%d", i),
			Config: core.RunConfig{
				OS:       oses[i%len(oses)],
				Workload: classes[i%len(classes)],
				Duration: time.Duration(i+1) * time.Millisecond,
			},
		}
	}
	return cells
}

// campaignBytes runs cells through a campaign runner with the given
// executor and returns the merged result stream in submission order — the
// exact bytes the server would serve.
func campaignBytes(t *testing.T, cells []campaign.Cell, baseSeed uint64, jobs int,
	exec func(key string, cfg core.RunConfig) (*core.Result, error)) []byte {
	t.Helper()
	run := campaign.New(campaign.Options{BaseSeed: baseSeed, Jobs: jobs, ExecuteCell: exec})
	run.Submit(cells...)
	var buf bytes.Buffer
	for _, c := range cells {
		res, err := run.Result(c.Key)
		if err != nil {
			t.Fatalf("cell %q: %v", c.Key, err)
		}
		if err := core.EncodeResult(&buf, res); err != nil {
			t.Fatal(err)
		}
	}
	if err := run.Wait(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// fleetBytes runs cells on a coordinator served by `workers` fabricated
// worker goroutines. churnSeed > 0 injects seeded join/leave interleaving:
// staggered registration, and mortal workers that die mid-lease (their
// cell is abandoned for the janitor to reclaim) with an immortal
// replacement joining in their stead.
func fleetBytes(t *testing.T, cells []campaign.Cell, baseSeed uint64, workers int, churnSeed int64) []byte {
	t.Helper()
	co := NewCoordinator(CoordinatorOptions{LeaseTTL: 100 * time.Millisecond, Poll: time.Millisecond})
	defer co.Close()

	rng := rand.New(rand.NewSource(churnSeed))
	var wg sync.WaitGroup
	var spawn func(startDelay time.Duration, lifetime int)
	spawn = func(startDelay time.Duration, lifetime int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(startDelay)
			w, _ := co.Register("")
			completed := 0
			for {
				resp, ok := co.Lease(w.WorkerID, 1)
				if !ok || resp.Draining {
					return
				}
				if len(resp.Leases) == 0 {
					time.Sleep(time.Millisecond)
					continue
				}
				l := resp.Leases[0]
				if lifetime > 0 && completed >= lifetime {
					// Die holding the lease: stop heartbeating and leave the
					// cell for the reclaim janitor. A fresh immortal worker
					// joins so the fleet always makes progress.
					spawn(0, 0)
					return
				}
				payload, err := api.EncodeCellResult(fakeCellResult(l))
				if err != nil {
					t.Errorf("encoding payload: %v", err)
					return
				}
				co.Complete(w.WorkerID, api.CompleteRequest{Fingerprint: l.Fingerprint, Result: payload})
				completed++
			}
		}()
	}
	for i := 0; i < workers; i++ {
		var delay time.Duration
		lifetime := 0
		if churnSeed > 0 {
			delay = time.Duration(rng.Intn(10)) * time.Millisecond
			if rng.Intn(2) == 0 {
				lifetime = 1 + rng.Intn(2)
			}
		}
		spawn(delay, lifetime)
	}

	got := campaignBytes(t, cells, baseSeed, 6, func(key string, cfg core.RunConfig) (*core.Result, error) {
		return co.ExecuteRemote(context.Background(), baseSeed, key, cfg)
	})
	co.Close() // draining grants release the worker loops
	wg.Wait()
	return got
}

// TestFleetShardingByteIdentical is the satellite property test: for every
// worker count 1..16, with seeded churn, the fleet-merged stream equals
// the single-process stream byte for byte.
func TestFleetShardingByteIdentical(t *testing.T) {
	const baseSeed = 77
	cells := shardCells(12)

	// Single-process reference: the same pure executor the fabricated
	// workers apply, run inline with no coordinator at all.
	want := campaignBytes(t, cells, baseSeed, 1, func(key string, cfg core.RunConfig) (*core.Result, error) {
		return fakeCellResult(api.Lease{Key: key, Config: cfg}), nil
	})
	if len(want) == 0 {
		t.Fatal("reference stream is empty")
	}

	counts := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	if testing.Short() {
		counts = []int{1, 4, 16}
	}
	for _, workers := range counts {
		for _, churnSeed := range []int64{0, int64(1000 + workers)} {
			got := fleetBytes(t, cells, baseSeed, workers, churnSeed)
			if !bytes.Equal(got, want) {
				t.Errorf("workers=%d churn=%d: fleet stream differs from single-process stream (%d vs %d bytes)",
					workers, churnSeed, len(got), len(want))
			}
		}
	}
}

// TestFleetHTTPByteIdenticalWithWorkerKill runs the whole stack for real:
// a fleet-mode server, latworkd-equivalent workers over HTTP running the
// actual simulator, and a victim worker whose execution wedges before
// being abandoned mid-campaign. The merged result must equal a local run,
// and the loss must be visible in the re-dispatch counters.
func TestFleetHTTPByteIdenticalWithWorkerKill(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the real simulator")
	}
	spec := e2eSpec()
	want := runLocally(t, spec, 4)

	reg := metrics.NewRegistry()
	srv := New(Options{
		Jobs:    4,
		Metrics: reg,
		Fleet:   &CoordinatorOptions{LeaseTTL: 400 * time.Millisecond, Poll: 10 * time.Millisecond},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	c := client.New(ts.URL, client.Options{})
	st, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	// The victim registers first and wedges on its first cell: its lease
	// can only come back via heartbeat expiry and re-dispatch.
	wedge := make(chan struct{})
	unwedge := sync.OnceFunc(func() { close(wedge) })
	defer unwedge()
	victimCtx, killVictim := context.WithCancel(ctx)
	defer killVictim()
	var workerWG sync.WaitGroup
	workerWG.Add(1)
	go func() {
		defer workerWG.Done()
		vc := client.New(ts.URL, client.Options{})
		vc.RunWorker(victimCtx, client.WorkerOptions{
			Name: "victim",
			Execute: func(cfg core.RunConfig) *core.Result {
				<-wedge
				return core.Run(cfg)
			},
		})
	}()
	waitFor(t, "victim to hold a lease", func() bool {
		fs, err := c.Fleet(ctx)
		return err == nil && fs.Leased >= 1
	})
	killVictim() // SIGKILL-equivalent: heartbeats stop, the lease is stranded

	// Two healthy workers running the real simulator finish the campaign,
	// including the victim's re-dispatched cell.
	workerErrs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		workerWG.Add(1)
		go func(i int) {
			defer workerWG.Done()
			wc := client.New(ts.URL, client.Options{})
			workerErrs <- wc.RunWorker(ctx, client.WorkerOptions{Name: fmt.Sprintf("healthy-%d", i)})
		}(i)
	}

	st, err = c.Watch(ctx, st.ID, nil)
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	if st.State != api.StateDone {
		t.Fatalf("campaign finished %s: %s", st.State, st.Error)
	}
	got, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("fleet result differs from local run (%d vs %d bytes)", len(got), len(want))
	}

	if n := reg.Counter(MetricFleetCellsRedispatched).Value(); n < 1 {
		t.Errorf("%s = %d, want >= 1 (victim's cell must have been re-dispatched)", MetricFleetCellsRedispatched, n)
	}
	if n := reg.Counter(MetricFleetWorkersExpired).Value(); n < 1 {
		t.Errorf("%s = %d, want >= 1", MetricFleetWorkersExpired, n)
	}
	if n := reg.Counter(MetricFleetCellsCompleted).Value(); n != uint64(len(spec.Cells)) {
		t.Errorf("%s = %d, want %d", MetricFleetCellsCompleted, n, len(spec.Cells))
	}

	// Shutdown drains the fleet: healthy workers exit nil. The victim's
	// wedged execution is released so its session can drain too.
	srv.Close()
	for i := 0; i < 2; i++ {
		if err := <-workerErrs; err != nil && ctx.Err() == nil {
			t.Errorf("healthy worker exit: %v", err)
		}
	}
	unwedge()
	workerWG.Wait()
}
