package kernel_test

import (
	"testing"

	"wdmlat/internal/kernel"
	"wdmlat/internal/sim"
)

func TestNMIDeliveredInsideMaskedWindow(t *testing.T) {
	b := newBench(t, 1, false)
	var hits []sim.Time
	b.k.SetNMIHandler(func(now sim.Time) { hits = append(hits, now) })

	// A 2 ms interrupt-masked window; regular interrupts stall, NMIs land.
	b.eng.At(100_000, "mask", func(sim.Time) {
		b.k.InjectEpisode(kernel.MaskInterrupts, 600_000, "VXD", "_Cli")
	})
	var regularAt sim.Time
	intr := b.k.Connect(40, 16, "DRV", "_ISR", func(c *kernel.IsrContext) {
		regularAt = c.Now()
	})
	b.eng.At(200_000, "irq", func(sim.Time) { intr.Assert() })
	b.eng.At(300_000, "nmi", func(sim.Time) { b.k.AssertNMI() })
	b.eng.RunUntil(2_000_000)

	if len(hits) != 1 {
		t.Fatalf("NMI hits = %d", len(hits))
	}
	if hits[0] != 300_000 {
		t.Fatalf("NMI at %d, want 300000 (inside the masked window)", hits[0])
	}
	if regularAt < 700_000 {
		t.Fatalf("regular ISR at %d ran inside the masked window", regularAt)
	}
	if b.k.Counters().NMIs != 1 {
		t.Fatalf("NMI counter = %d", b.k.Counters().NMIs)
	}
}

func TestNMIPreemptsISR(t *testing.T) {
	b := newBench(t, 1, false)
	var nmiAt sim.Time
	b.k.SetNMIHandler(func(now sim.Time) { nmiAt = now })
	intr := b.k.Connect(40, 20, "DRV", "_ISR", func(c *kernel.IsrContext) {
		c.Charge(100_000) // long ISR
	})
	b.eng.At(10_000, "irq", func(sim.Time) { intr.Assert() })
	b.eng.At(50_000, "nmi", func(sim.Time) { b.k.AssertNMI() })
	b.eng.RunUntil(1_000_000)
	if nmiAt != 50_000 {
		t.Fatalf("NMI at %d, want 50000 (mid-ISR)", nmiAt)
	}
}

func TestNMIWithoutHandlerIsNoop(t *testing.T) {
	b := newBench(t, 1, false)
	b.k.AssertNMI()
	if c := b.k.Counters(); c.NMIs != 0 || c.NMIsDropped != 0 {
		t.Fatalf("counters: %+v", c)
	}
}

func TestPerfCounterSamplerPeriodic(t *testing.T) {
	b := newBench(t, 1, false)
	n := 0
	b.k.SetNMIHandler(func(sim.Time) { n++ })
	s := b.k.NewPerfCounterSampler(75_000) // 0.25 ms
	s.Start()
	s.Start() // idempotent
	b.eng.RunUntil(3_000_000)
	// 10 ms / 0.25 ms = 40 samples.
	if n < 39 || n > 41 {
		t.Fatalf("samples = %d, want ~40", n)
	}
	s.Stop()
	before := n
	b.eng.RunUntil(6_000_000)
	if n != before {
		t.Fatal("sampler kept firing after Stop")
	}
}

func TestNMIStretchesPreemptedWork(t *testing.T) {
	b := newBench(t, 1, false)
	b.k.SetNMIHandler(func(sim.Time) {})
	var finished sim.Time
	b.k.CreateThread("w", 15, func(tc *kernel.ThreadContext) {
		tc.Exec(100_000)
		finished = tc.Now()
	})
	for i := 0; i < 10; i++ {
		at := sim.Time(10_000 * (i + 1))
		b.eng.At(at, "nmi", func(sim.Time) { b.k.AssertNMI() })
	}
	b.eng.RunUntil(1_000_000)
	// Thread starts after 2 switches (worker first); 10 NMIs of ~300
	// cycles each stretch the 100k exec.
	base := sim.Time(2*costSwitch) + 100_000
	if finished <= base {
		t.Fatalf("finished at %d: NMIs did not consume time", finished)
	}
	if finished > base+10_000 {
		t.Fatalf("finished at %d: NMIs consumed too much", finished)
	}
}
