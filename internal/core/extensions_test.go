package core_test

import (
	"testing"
	"time"

	"wdmlat/internal/core"
	"wdmlat/internal/modem"
	"wdmlat/internal/ospersona"
	"wdmlat/internal/sim"
	"wdmlat/internal/workload"
)

// TestCauseNMIWorksOnNT: performance-counter NMI sampling (§6.1) needs no
// legacy IDT patching, so the cause tool becomes usable on NT — and it
// attributes the RT-24 episodes to the work-item worker.
func TestCauseNMIWorksOnNT(t *testing.T) {
	r := run(t, core.RunConfig{
		OS:             ospersona.NT4,
		Workload:       workload.Business,
		Seed:           31,
		Duration:       2 * time.Minute,
		CauseAnalysis:  true,
		CauseNMI:       true,
		CauseWalkStack: true,
		CauseThreshold: 4 * time.Millisecond,
	})
	if len(r.Episodes) == 0 {
		t.Fatal("NMI cause tool captured nothing on NT")
	}
	sawWorker := false
	for _, ep := range r.Episodes {
		for _, fc := range ep.Analysis() {
			if fc.Frame.Module == "ExWorkerThread" {
				sawWorker = true
			}
		}
	}
	if !sawWorker {
		t.Fatal("episodes did not attribute NT RT-24 latency to the work-item worker")
	}
}

// TestWin2000BetaBehavesLikeNT: the §6.1 monitoring target keeps NT's
// architecture, so its real-time behaviour must sit with NT 4.0, an order
// of magnitude inside Windows 98's.
func TestWin2000BetaBehavesLikeNT(t *testing.T) {
	w2k := run(t, core.RunConfig{OS: ospersona.Win2000Beta, Workload: workload.Games, Seed: 32, Duration: time.Minute})
	w98 := run(t, core.RunConfig{OS: ospersona.Win98, Workload: workload.Games, Seed: 32, Duration: time.Minute})

	t28 := w2k.Freq.Millis(w2k.Thread[28].Max())
	t24 := w2k.Freq.Millis(w2k.Thread[24].Max())
	w98t28 := w98.Freq.Millis(w98.Thread[28].Max())

	if t28 >= 3 {
		t.Fatalf("Win2000 Beta RT-28 worst %.2f ms: should stay under the modem slack like NT", t28)
	}
	if t24 < 3*t28 {
		t.Fatalf("Win2000 Beta RT-24 (%.2f) vs RT-28 (%.2f): worker effect missing", t24, t28)
	}
	if w98t28 < 4*t28 {
		t.Fatalf("Win98 RT-28 (%.2f) vs Win2000 Beta (%.2f): NT-family advantage missing", w98t28, t28)
	}
	if w2k.OSName != "Windows 2000 Beta 2 (NT 5.0)" {
		t.Fatalf("OS name = %q", w2k.OSName)
	}
}

// TestRunMergedPoolsDistributions: pooled runs accumulate samples and span,
// and the pooled maximum dominates a single run's.
func TestRunMergedPoolsDistributions(t *testing.T) {
	cfg := core.RunConfig{OS: ospersona.Win98, Workload: workload.Games, Seed: 33, Duration: 20 * time.Second}
	single := core.Run(cfg)
	merged := core.RunMerged(cfg, 3)
	if merged.Samples <= 2*single.Samples {
		t.Fatalf("merged samples %d vs single %d", merged.Samples, single.Samples)
	}
	if merged.Observed <= 2*single.Observed {
		t.Fatalf("merged span %d vs single %d", merged.Observed, single.Observed)
	}
	if merged.Thread[28].Max() < single.Thread[28].Max() {
		t.Fatal("pooled max below the first replica's max")
	}
	if merged.Thread[28].N() != merged.Samples {
		// Warmup samples are included in both; exact equality isn't
		// guaranteed, but the histogram must carry all replicas.
		if merged.Thread[28].N() < uint64(float64(merged.Samples)*0.9) {
			t.Fatalf("pooled histogram too small: %d vs %d samples", merged.Thread[28].N(), merged.Samples)
		}
	}
}

// TestRunMergedSingleIsPlainRun: runs<=1 short-circuits.
func TestRunMergedSingleIsPlainRun(t *testing.T) {
	cfg := core.RunConfig{OS: ospersona.NT4, Workload: workload.Business, Seed: 34, Duration: 10 * time.Second}
	a := core.Run(cfg)
	b := core.RunMerged(cfg, 1)
	if a.Samples != b.Samples || a.Thread[28].Max() != b.Thread[28].Max() {
		t.Fatal("RunMerged(1) differs from Run")
	}
}

// TestADSLFeasibility exercises Table 1's tightest row: ADSL tolerates only
// 4-10 ms. A DPC-based ADSL datapump (3 ms cycles, triple buffered = 6 ms
// tolerance) survives on NT under the games stress; the identical pump's
// thread-based variant on Windows 98 underruns — the §1 observation that
// the most processor-intensive application has the least tolerance, made
// operational.
func TestADSLFeasibility(t *testing.T) {
	run := func(osSel ospersona.OS, modality modem.Modality) uint64 {
		m := ospersona.Build(osSel, ospersona.Options{Seed: 17})
		defer m.Shutdown()
		d := modem.Attach(m.Kernel, modem.Config{
			CycleMS: 3, Buffers: 3, Modality: modality,
		})
		m.RunFor(m.Freq().Cycles(200 * time.Millisecond))
		gen := workload.New(workload.Games, m)
		gen.Start()
		m.Eng.After(m.MS(50), "pump", func(sim.Time) { d.Start() })
		m.RunFor(m.Freq().Cycles(2 * time.Minute))
		return d.Underruns()
	}
	if u := run(ospersona.NT4, modem.DPCBased); u != 0 {
		t.Fatalf("NT DPC-based ADSL pump underran %d times", u)
	}
	if u := run(ospersona.Win98, modem.ThreadBased); u == 0 {
		t.Fatal("Win98 thread-based ADSL pump should underrun under games")
	}
}
