package stats

import "math"

// Point is one plotted point of a latency distribution: a latency bin in
// milliseconds with the percentage of samples falling in it and at or above
// it. Figure 4 of the paper plots Percent against the bin on log-log axes.
type Point struct {
	LoMs, HiMs  float64 // bin edges in milliseconds
	Count       uint64
	Percent     float64 // % of samples in [LoMs, HiMs)
	CCDFPercent float64 // % of samples >= LoMs
}

// OctaveSeries aggregates the histogram into power-of-two bins in
// milliseconds, matching the axes of Figure 4 (0.125, 0.25, ..., 128 ms for
// the thread plots; 1..128 ms for the DPC plots). Bins are clipped to
// [loMs, hiMs]; samples below the first bin are folded into it and samples
// above the last into the last, as the paper's edge bins do.
// BandPoint is a Point augmented with the simultaneous DKW confidence band
// around its CCDF value: with probability ≥ confidence, the true
// P(latency ≥ LoMs) lies in [CCDFLoPercent, CCDFHiPercent] — at every bin
// at once, since the DKW band is simultaneous over the whole distribution.
type BandPoint struct {
	Point
	CCDFLoPercent, CCDFHiPercent float64
}

// OctaveBandSeries is OctaveSeries with the DKW band attached: each bin
// carries the band around the empirical CCDF at the bin's lower edge.
func (h *Histogram) OctaveBandSeries(loMs, hiMs, confidence float64) []BandPoint {
	pts := h.OctaveSeries(loMs, hiMs)
	out := make([]BandPoint, len(pts))
	for i, p := range pts {
		lo, hi := h.CCDFBand(h.freq.FromMillis(p.LoMs), confidence)
		out[i] = BandPoint{Point: p, CCDFLoPercent: lo * 100, CCDFHiPercent: hi * 100}
	}
	return out
}

func (h *Histogram) OctaveSeries(loMs, hiMs float64) []Point {
	if h.n == 0 || loMs <= 0 || hiMs <= loMs {
		return nil
	}
	var pts []Point
	for lo := loMs; lo < hiMs; lo *= 2 {
		pts = append(pts, Point{LoMs: lo, HiMs: lo * 2})
	}
	total := float64(h.n)
	for i := range h.counts {
		c := h.counts[i]
		if c == 0 {
			continue
		}
		ms := h.freq.Millis(bucketLow(i))
		j := 0
		if ms > 0 {
			j = int(math.Floor(math.Log2(ms / loMs)))
		} else {
			j = -1
		}
		if j < 0 {
			j = 0
		}
		if j >= len(pts) {
			j = len(pts) - 1
		}
		pts[j].Count += c
	}
	// Percent and CCDF.
	var above uint64
	for i := len(pts) - 1; i >= 0; i-- {
		above += pts[i].Count
		pts[i].Percent = float64(pts[i].Count) / total * 100
		pts[i].CCDFPercent = float64(above) / total * 100
	}
	return pts
}
