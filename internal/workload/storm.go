package workload

import (
	"math"

	"wdmlat/internal/ospersona"
	"wdmlat/internal/sim"
)

// Storm is the interrupt-storm workload: a sustained stream of received
// packets at a configurable offered rate, the stress axis the frontier
// sweep bisects. Unlike the web class's discrete download bursts, the
// storm never idles — it is the "external interrupts at a sustained rate"
// stress of Horst et al., pointed at the paper's NIC path.
//
// Determinism: arrivals live on a fixed lattice of 2^18 slots per second
// (stormBaseHz), each slot kept independently with probability
// PPS/stormBaseHz — a Bernoulli-thinned Poisson approximation whose thinning
// decisions depend only on the generator's split RNG stream. The generator
// skips directly from one kept slot to the next by sampling the geometric
// gap (one engine event per kept arrival, not per slot), so a 4k-pps cell
// costs no more events than it delivers packets, and the arrival sequence
// for a given (seed, rate) never depends on what the machine does with the
// packets.
type Storm struct {
	m   *ospersona.Machine
	rng *sim.RNG
	cfg StormConfig

	slot      sim.Cycles // engine cycles per lattice slot
	keepProb  float64
	offered   uint64
	samples   []BacklogSample
	sampleGap sim.Cycles
	on        bool
}

// stormBaseHz is the arrival lattice rate: 2^18 slots per second, giving
// power-of-two-friendly thinning probabilities and a ceiling comfortably
// above any knee the personas can sustain.
const stormBaseHz = 1 << 18

// stormIndicationBatch is the offered-packet stride between applications of
// the OS's NetBurst response (mask/lock/DPC-work/work-item draws): one
// response per 256 offered packets keeps the OS-side interference
// proportional to load without a full burst response per packet.
const stormIndicationBatch = 256

// StormConfig parameterizes a storm.
type StormConfig struct {
	// PPS is the offered packet rate (packets per second). It is capped at
	// stormBaseHz (262144), the lattice ceiling.
	PPS float64
	// Bytes is the frame size; default 1460 (full LAN MTU payload).
	Bytes int
	// SampleEveryMS is the backlog sampling period; default 50 ms.
	SampleEveryMS float64
}

// BacklogSample is one periodic observation of the NIC ring, the raw
// series the livelock criterion inspects for backlog growth.
type BacklogSample struct {
	T         sim.Time // observation time
	Pending   int      // packets waiting in the ring
	Delivered uint64   // cumulative packets handed to the driver
	Dropped   uint64   // cumulative ring overflows
}

// NewStorm creates a stopped storm bound to a machine. The machine should
// have storm accounting enabled (ospersona.Machine.EnableStormAccounting)
// before traffic flows if per-packet latency is wanted.
func NewStorm(m *ospersona.Machine, cfg StormConfig) *Storm {
	if cfg.PPS <= 0 {
		panic("workload: non-positive storm rate")
	}
	if cfg.PPS > stormBaseHz {
		cfg.PPS = stormBaseHz
	}
	if cfg.Bytes == 0 {
		cfg.Bytes = 1460
	}
	if cfg.Bytes <= 0 {
		panic("workload: invalid storm frame size")
	}
	if cfg.SampleEveryMS == 0 {
		cfg.SampleEveryMS = 50
	}
	s := &Storm{
		m:         m,
		rng:       m.Eng.RNG().Split(),
		cfg:       cfg,
		keepProb:  cfg.PPS / stormBaseHz,
		sampleGap: m.MS(cfg.SampleEveryMS),
	}
	// One lattice slot in cycles: freq/2^18. At the default 300 MHz this is
	// 1144 cycles — comfortably above 1, so distinct slots stay distinct.
	s.slot = sim.Cycles(int64(m.Freq()) / stormBaseHz)
	if s.slot < 1 {
		s.slot = 1
	}
	return s
}

// Start begins the arrival stream and backlog sampling.
func (s *Storm) Start() {
	if s.on {
		panic("workload: storm already started")
	}
	s.on = true
	s.scheduleNext()
	s.m.Eng.After(s.sampleGap, "storm.sample", s.sample)
}

// Stop halts arrivals and sampling (pending engine events drain inert).
func (s *Storm) Stop() { s.on = false }

// Offered returns the number of packets offered so far.
func (s *Storm) Offered() uint64 { return s.offered }

// Samples returns the backlog series collected so far. The slice is owned
// by the storm; copy before mutating.
func (s *Storm) Samples() []BacklogSample { return s.samples }

// scheduleNext samples the geometric gap to the next kept lattice slot and
// schedules its arrival: P(gap = k) = p(1-p)^(k-1), drawn by inversion.
func (s *Storm) scheduleNext() {
	gap := 1
	if s.keepProb < 1 {
		u := s.rng.Float64()
		gap = 1 + int(math.Log(1-u)/math.Log(1-s.keepProb))
	}
	s.m.Eng.After(sim.Cycles(gap)*s.slot, "storm.rx", s.arrive)
}

func (s *Storm) arrive(sim.Time) {
	if !s.on {
		return
	}
	s.offered++
	s.m.StormPacket(s.cfg.Bytes)
	if s.offered%stormIndicationBatch == 0 {
		s.m.StormBatchResponse()
	}
	s.scheduleNext()
}

func (s *Storm) sample(sim.Time) {
	if !s.on {
		return
	}
	s.samples = append(s.samples, BacklogSample{
		T:         s.m.Now(),
		Pending:   s.m.NIC.Pending(),
		Delivered: s.m.NIC.Delivered(),
		Dropped:   s.m.NIC.Dropped(),
	})
	s.m.Eng.After(s.sampleGap, "storm.sample", s.sample)
}
