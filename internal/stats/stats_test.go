package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"wdmlat/internal/sim"
)

const freq = sim.DefaultFreq

func TestHistogramBasicMoments(t *testing.T) {
	h := NewHistogram(freq)
	for _, v := range []sim.Cycles{100, 200, 300, 400} {
		h.Add(v)
	}
	if h.N() != 4 {
		t.Fatalf("N = %d", h.N())
	}
	if h.Min() != 100 || h.Max() != 400 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
	if h.Mean() != 250 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if sd := h.StdDev(); math.Abs(sd-111.8) > 0.1 {
		t.Fatalf("stddev = %v, want ~111.8", sd)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(freq)
	if h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 || h.StdDev() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
	if h.CCDF(100) != 0 {
		t.Fatal("empty CCDF should be 0")
	}
}

func TestNegativeSamplePanics(t *testing.T) {
	h := NewHistogram(freq)
	defer func() {
		if recover() == nil {
			t.Fatal("negative sample should panic")
		}
	}()
	h.Add(-1)
}

func TestBucketResolution(t *testing.T) {
	// Bucket relative width is 2^(1/16)-1 ≈ 4.4%: values 5% apart must land
	// in different buckets; values 1% apart may share.
	if bucketIndex(100_000) == bucketIndex(105_000) {
		t.Fatal("5% apart values share a bucket: resolution too coarse")
	}
	// Bucket edges are monotone and bucketLow inverts bucketIndex to
	// within one bucket.
	for _, v := range []sim.Cycles{1, 10, 1000, 300_000, 25_000_000, 1 << 35} {
		i := bucketIndex(v)
		lo, hi := bucketLow(i), bucketLow(i+1)
		if v < lo || v >= hi {
			t.Fatalf("value %d not within its bucket [%d,%d)", v, lo, hi)
		}
	}
}

func TestCCDFAndQuantile(t *testing.T) {
	h := NewHistogram(freq)
	// 1000 samples at 1ms, 10 at 10ms, 1 at 100ms.
	for i := 0; i < 1000; i++ {
		h.AddMillis(1)
	}
	for i := 0; i < 10; i++ {
		h.AddMillis(10)
	}
	h.AddMillis(100)

	if got := h.CCDF(freq.FromMillis(5)); math.Abs(got-11.0/1011) > 1e-9 {
		t.Fatalf("CCDF(5ms) = %v, want ~0.0109", got)
	}
	if got := h.CCDF(freq.FromMillis(50)); math.Abs(got-1.0/1011) > 1e-9 {
		t.Fatalf("CCDF(50ms) = %v", got)
	}
	if got := h.CCDF(1); got != 1 {
		t.Fatalf("CCDF(1) = %v, want 1", got)
	}
	q := h.Quantile(0.5)
	if ms := freq.Millis(q); ms < 0.9 || ms > 1.1 {
		t.Fatalf("median = %v ms, want ~1", ms)
	}
	q99 := h.Quantile(0.999)
	if ms := freq.Millis(q99); ms < 5 {
		t.Fatalf("p99.9 = %v ms, want >= ~10", ms)
	}
}

func TestMerge(t *testing.T) {
	a, b := NewHistogram(freq), NewHistogram(freq)
	for i := 0; i < 100; i++ {
		a.AddMillis(1)
		b.AddMillis(4)
	}
	b.AddMillis(64)
	a.Merge(b)
	if a.N() != 201 {
		t.Fatalf("merged N = %d", a.N())
	}
	if ms := freq.Millis(a.Max()); ms != 64 {
		t.Fatalf("merged max = %v ms", ms)
	}
}

func TestMergeFrequencyMismatchPanics(t *testing.T) {
	a := NewHistogram(freq)
	b := NewHistogram(freq * 2)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched merge should panic")
		}
	}()
	a.Merge(b)
}

func TestExpectedMaxOverReproducesTailRate(t *testing.T) {
	h := NewHistogram(freq)
	// Simulate one hour of observation with 1000 samples/s: 3.6M samples at
	// 0.1ms, of which 36 (one per 100s) reach 16ms and 1 reaches 60ms.
	for i := 0; i < 3_600_000-37; i++ {
		h.AddMillis(0.1)
	}
	for i := 0; i < 36; i++ {
		h.AddMillis(16)
	}
	h.AddMillis(60)
	observed := freq.Cycles(time.Hour)

	// Over the full hour: the observed max.
	if got := freq.Millis(h.ExpectedMaxOver(observed, observed)); got != 60 {
		t.Fatalf("hourly worst = %v ms, want 60", got)
	}
	// Over one minute: ~0.6 events >= 16ms expected, 1/60 >= 60ms, so the
	// expected max should be ~16ms... just below the level where expected
	// count crosses 1. 36 events/hr => 0.6/min at 16ms: below 1, so the
	// answer must be >= 16ms is NOT exceeded; scanning down, at 0.1ms the
	// count explodes => expected max lands in (0.1, 16].
	oneMin := freq.Cycles(time.Minute)
	got := freq.Millis(h.ExpectedMaxOver(oneMin, observed))
	if got < 0.09 || got > 16.5 {
		t.Fatalf("per-minute worst = %v ms, want in (0.1, 16.5]", got)
	}
	if got < 1 {
		t.Fatalf("per-minute worst = %v ms: tail events ignored", got)
	}
}

func TestExpectedMaxMonotoneInWindow(t *testing.T) {
	h := NewHistogram(freq)
	r := sim.NewRNG(1)
	d := sim.Pareto{Xm: freq.FromMillis(0.05), Alpha: 1.3, Cap: freq.FromMillis(80)}
	for i := 0; i < 500_000; i++ {
		h.Add(d.Draw(r))
	}
	observed := freq.Cycles(2 * time.Hour)
	prev := sim.Cycles(-1)
	for _, w := range []time.Duration{time.Second, time.Minute, 10 * time.Minute, time.Hour, 2 * time.Hour, 40 * time.Hour} {
		m := h.ExpectedMaxOver(freq.Cycles(w), observed)
		if m < prev {
			t.Fatalf("expected max not monotone at window %v: %d < %d", w, m, prev)
		}
		prev = m
	}
	// Beyond the observation span it clamps to the observed max.
	if m := h.ExpectedMaxOver(freq.Cycles(40*time.Hour), observed); m != h.Max() {
		t.Fatalf("clamp to observed max: got %d, max %d", m, h.Max())
	}
}

func TestWorstCasesUsesUsageModel(t *testing.T) {
	h := NewHistogram(freq)
	for i := 0; i < 1_000_000; i++ {
		h.AddMillis(0.1)
	}
	h.AddMillis(50)
	observed := freq.Cycles(time.Hour)
	wc := h.WorstCases(observed, OfficeUsage)
	// Hourly equals the full observation: the observed max.
	if wc[0] != 50 {
		t.Fatalf("hourly = %v, want 50", wc[0])
	}
	// Daily and weekly clamp at the observed max too (longer horizons).
	if wc[1] != 50 || wc[2] != 50 {
		t.Fatalf("daily/weekly = %v/%v, want 50/50", wc[1], wc[2])
	}
	// Horizons are ordered hour <= day <= week.
	hz := OfficeUsage.Horizons()
	if !(hz[0].Spans <= hz[1].Spans && hz[1].Spans <= hz[2].Spans) {
		t.Fatalf("horizons out of order: %+v", hz)
	}
}

func TestUsageModels(t *testing.T) {
	if d := ConsumerUsage.Horizons()[1].Spans; d != time.Duration(3.5*float64(time.Hour)) {
		t.Fatalf("consumer day = %v", d)
	}
	if w := OfficeUsage.Horizons()[2].Spans; w != 40*time.Hour {
		t.Fatalf("office week = %v, want 40h", w)
	}
}

func TestOctaveSeries(t *testing.T) {
	h := NewHistogram(freq)
	for i := 0; i < 90; i++ {
		h.AddMillis(0.2) // bin [0.125, 0.25)
	}
	for i := 0; i < 9; i++ {
		h.AddMillis(3) // bin [2, 4)
	}
	h.AddMillis(100) // bin [64, 128)
	pts := h.OctaveSeries(0.125, 128)
	if len(pts) != 10 {
		t.Fatalf("series has %d bins, want 10", len(pts))
	}
	if pts[0].LoMs != 0.125 || pts[0].Count != 90 {
		t.Fatalf("bin0 = %+v", pts[0])
	}
	if pts[4].LoMs != 2 || pts[4].Count != 9 {
		t.Fatalf("bin[2,4) = %+v", pts[4])
	}
	last := pts[len(pts)-1]
	if last.Count != 1 || math.Abs(last.Percent-1.0) > 1e-9 {
		t.Fatalf("last bin = %+v", last)
	}
	if math.Abs(pts[0].CCDFPercent-100) > 1e-9 {
		t.Fatalf("first CCDF = %v", pts[0].CCDFPercent)
	}
	if math.Abs(pts[4].CCDFPercent-10) > 1e-9 {
		t.Fatalf("CCDF at 2ms = %v, want 10%%", pts[4].CCDFPercent)
	}
}

func TestOctaveSeriesClipsOutOfRange(t *testing.T) {
	h := NewHistogram(freq)
	h.AddMillis(0.01) // below range: folds into first bin
	h.AddMillis(500)  // above range: folds into last bin
	pts := h.OctaveSeries(0.125, 128)
	if pts[0].Count != 1 {
		t.Fatalf("below-range sample not folded into first bin: %+v", pts[0])
	}
	if pts[len(pts)-1].Count != 1 {
		t.Fatalf("above-range sample not folded into last bin")
	}
}

// Property: CCDF is monotone non-increasing and bounded by [0,1]; quantiles
// are monotone in q; every sample lands in a bucket whose edges bracket it.
func TestQuickHistogramInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRNG(seed)
		h := NewHistogram(freq)
		for i := 0; i < 500; i++ {
			h.Add(sim.Cycles(r.Int63n(1 << 30)))
		}
		prev := 2.0
		for v := sim.Cycles(1); v < 1<<31; v *= 4 {
			c := h.CCDF(v)
			if c < 0 || c > 1 || c > prev+1e-12 {
				return false
			}
			prev = c
		}
		var prevQ sim.Cycles
		for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 1} {
			x := h.Quantile(q)
			if x < prevQ {
				return false
			}
			prevQ = x
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: merging two histograms preserves counts and extremes.
func TestQuickMergePreservesMass(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRNG(seed)
		a, b := NewHistogram(freq), NewHistogram(freq)
		na, nb := 1+r.Intn(200), 1+r.Intn(200)
		var max sim.Cycles
		for i := 0; i < na; i++ {
			v := sim.Cycles(r.Int63n(1 << 28))
			a.Add(v)
			if v > max {
				max = v
			}
		}
		for i := 0; i < nb; i++ {
			v := sim.Cycles(r.Int63n(1 << 28))
			b.Add(v)
			if v > max {
				max = v
			}
		}
		a.Merge(b)
		return a.N() == uint64(na+nb) && a.Max() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMillisAccessors(t *testing.T) {
	h := NewHistogram(freq)
	h.AddMillis(2)
	h.AddMillis(4)
	if got := h.MaxMillis(); got != 4 {
		t.Fatalf("MaxMillis = %v", got)
	}
	if got := h.MeanMillis(); math.Abs(got-3) > 1e-9 {
		t.Fatalf("MeanMillis = %v", got)
	}
}

func TestClone(t *testing.T) {
	h := NewHistogram(freq)
	h.AddMillis(1)
	cp := h.Clone()
	cp.AddMillis(50)
	if h.N() != 1 || cp.N() != 2 {
		t.Fatalf("clone not independent: %d/%d", h.N(), cp.N())
	}
	if h.Max() == cp.Max() {
		t.Fatal("clone shares extremes")
	}
}

func TestRateAbove(t *testing.T) {
	h := NewHistogram(freq)
	for i := 0; i < 100; i++ {
		h.AddMillis(1)
	}
	observed := freq.Cycles(100 * time.Second) // one event per second
	rate := h.RateAbove(freq.FromMillis(0.5), observed)
	perSec := rate * float64(freq)
	if math.Abs(perSec-1) > 1e-9 {
		t.Fatalf("rate = %v/s, want 1", perSec)
	}
	if h.RateAbove(1, 0) != 0 {
		t.Fatal("zero observation should yield zero rate")
	}
}
