package server

// Adaptive campaigns through the whole service stack: a Precision-bearing
// spec must stream one pooled document per logical cell, byte-identical to
// the same policy run locally on the campaign runner — in-process, through
// a warm checkpoint store, and executed by a latserved-style worker fleet.
// The policy is part of the campaign identity, so the same cells without it
// are a different campaign.

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"wdmlat/internal/api"
	"wdmlat/internal/campaign"
	"wdmlat/internal/campaign/store"
	"wdmlat/internal/client"
	"wdmlat/internal/core"
	"wdmlat/internal/metrics"
	"wdmlat/internal/ospersona"
	"wdmlat/internal/sim"
	"wdmlat/internal/stats"
	"wdmlat/internal/workload"
)

// adaptiveExec is a pure, convergence-capable executor shared by the local
// reference run, the in-process server, and the fleet workers: per-replica
// sample batches sized by workload class, so logical cells converge at
// different replica counts.
func adaptiveExec(cfg core.RunConfig) *core.Result {
	rng := sim.NewRNG(cfg.Seed)
	perReplica := 5000 + 2000*int(cfg.Workload%2)
	fill := func(base sim.Cycles) *stats.Histogram {
		h := stats.NewHistogram(sim.DefaultFreq)
		for i := 0; i < perReplica; i++ {
			h.Add(base + rng.Cyclesn(48))
		}
		return h
	}
	return &core.Result{
		// The coordinator's completion validation re-derives the cell
		// fingerprint from the embedded config, which the real simulator
		// normalizes — a fleet-compatible fake must too.
		Config:       cfg.Normalized(),
		OSName:       "fake",
		Class:        cfg.Workload,
		Observed:     1 << 20,
		Freq:         sim.DefaultFreq,
		Samples:      uint64(perReplica),
		DpcInt:       fill(1024),
		DpcIntOracle: stats.NewHistogram(sim.DefaultFreq),
		Thread:       map[int]*stats.Histogram{28: fill(2048), 24: fill(4096)},
		HwToThread:   map[int]*stats.Histogram{28: fill(2048), 24: fill(4096)},
	}
}

func adaptiveSpec() *api.CampaignSpec {
	prec := stats.Precision{Quantiles: []float64{0.99}, RelWidth: 0.15, MaxRuns: 16}
	return &api.CampaignSpec{
		BaseSeed: 31,
		Cells: []api.CellSpec{
			{Key: "nt4/business/adp", Config: core.RunConfig{OS: ospersona.NT4, Workload: workload.Class(1)}},
			{Key: "nt4/games/adp", Config: core.RunConfig{OS: ospersona.NT4, Workload: workload.Class(0)}},
			{Key: "win98/business/adp", Config: core.RunConfig{OS: ospersona.Win98, Workload: workload.Class(1)}},
		},
		Precision: &prec,
	}
}

// localAdaptiveBytes is the reference stream: the spec's policy applied
// per logical cell on a plain campaign runner.
func localAdaptiveBytes(t *testing.T, spec *api.CampaignSpec, jobs int) ([]byte, map[string]campaign.Adaptive) {
	t.Helper()
	run := campaign.New(campaign.Options{BaseSeed: spec.Seed(), Jobs: jobs, Execute: adaptiveExec})
	var buf bytes.Buffer
	ads := make(map[string]campaign.Adaptive, len(spec.Cells))
	for _, c := range spec.Cells {
		res, ad, err := run.MergedAdaptive(c.Key, c.Config, *spec.Precision)
		if err != nil {
			t.Fatalf("local adaptive cell %q: %v", c.Key, err)
		}
		if err := core.EncodeResult(&buf, res); err != nil {
			t.Fatal(err)
		}
		ads[c.Key] = ad
	}
	return buf.Bytes(), ads
}

func TestServerAdaptiveByteIdenticalToLocalRun(t *testing.T) {
	spec := adaptiveSpec()
	want, ads := localAdaptiveBytes(t, spec, 1)
	want8, _ := localAdaptiveBytes(t, spec, 8)
	if !bytes.Equal(want, want8) {
		t.Fatal("local adaptive runs at jobs=1 and jobs=8 differ")
	}
	varied := false
	for _, ad := range ads {
		if !ad.Converged {
			t.Fatalf("reference cell failed to converge: %+v", ads)
		}
		if ad.Replicas != ads[spec.Cells[0].Key].Replicas {
			varied = true
		}
	}
	if !varied {
		t.Fatal("test spec does not vary replica counts per cell; weaken a class")
	}

	reg := metrics.NewRegistry()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Options{Jobs: 4, Store: st, Metrics: reg, Execute: adaptiveExec})
	ts := httptest.NewServer(srv.Handler())

	status, got := fetchViaClient(t, ts, spec)
	if !bytes.Equal(got, want) {
		t.Errorf("adaptive server bytes differ from local run (%d vs %d bytes)", len(got), len(want))
	}
	if status.Cached {
		t.Error("cold adaptive run claims cached")
	}
	if status.Done != len(spec.Cells) || status.Total != len(spec.Cells) {
		t.Errorf("progress %d/%d, want %d/%d logical cells", status.Done, status.Total, len(spec.Cells), len(spec.Cells))
	}
	var totalReplicas uint64
	for _, ad := range ads {
		totalReplicas += uint64(ad.Replicas)
	}
	if exec := reg.Counter(MetricCellsExec).Value(); exec != totalReplicas {
		t.Errorf("executed %d replicas, want %d", exec, totalReplicas)
	}
	if n := reg.Counter(campaign.MetricReplicasAdaptive).Value(); n != totalReplicas {
		t.Errorf("%s = %d, want %d", campaign.MetricReplicasAdaptive, n, totalReplicas)
	}
	if n := reg.Counter(campaign.MetricCellsConverged).Value(); n != uint64(len(spec.Cells)) {
		t.Errorf("%s = %d, want %d", campaign.MetricCellsConverged, n, len(spec.Cells))
	}
	ts.Close()
	srv.Close()

	// Warm store: a fresh server replays every replica from the cache,
	// executes nothing, and still serves identical bytes — the stopping
	// rule re-derives the same counts from the cached data.
	reg2 := metrics.NewRegistry()
	srv2 := New(Options{Jobs: 4, Store: st, Metrics: reg2, Execute: adaptiveExec})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	defer srv2.Close()
	status2, got2 := fetchViaClient(t, ts2, spec)
	if !bytes.Equal(got2, want) {
		t.Error("warm adaptive server bytes differ from local run")
	}
	if !status2.Cached {
		t.Error("warm adaptive run not marked cached")
	}
	if exec := reg2.Counter(MetricCellsExec).Value(); exec != 0 {
		t.Errorf("warm adaptive run executed %d replicas, want 0", exec)
	}
}

func TestFleetAdaptiveByteIdenticalToLocalRun(t *testing.T) {
	spec := adaptiveSpec()
	want, _ := localAdaptiveBytes(t, spec, 1)

	reg := metrics.NewRegistry()
	srv := New(Options{
		Jobs:    4,
		Metrics: reg,
		Fleet:   &CoordinatorOptions{},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for i := 0; i < 3; i++ {
		go func() {
			wc := client.New(ts.URL, client.Options{})
			_ = wc.RunWorker(ctx, client.WorkerOptions{Execute: adaptiveExec})
		}()
	}

	status, got := fetchViaClient(t, ts, spec)
	if !bytes.Equal(got, want) {
		t.Errorf("fleet adaptive bytes differ from local run (%d vs %d bytes)", len(got), len(want))
	}
	if status.Done != len(spec.Cells) {
		t.Errorf("fleet adaptive progress %d, want %d logical cells", status.Done, len(spec.Cells))
	}
}

func TestAdaptiveAdmissionBound(t *testing.T) {
	srv := New(Options{MaxCells: 8, Execute: adaptiveExec})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := adaptiveSpec() // 3 cells x MaxRuns 16 = 48 worst-case replicas > 8
	c := client.New(ts.URL, client.Options{})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if _, err := c.Submit(ctx, spec); err == nil {
		t.Fatal("adaptive spec exceeding the worst-case cell bound was admitted")
	}
}
