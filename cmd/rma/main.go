// rma demonstrates §5.2: schedulability analysis on a non-real-time OS via
// the "pseudo worst case". It measures a latency distribution under load,
// derives design-point latencies for several permissible error rates, and
// runs rate-monotonic response-time analysis on a representative real-time
// driver task set (soft modem datapump + low-latency audio + video capture).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"wdmlat/internal/cli"
	"wdmlat/internal/core"
	"wdmlat/internal/report"
	"wdmlat/internal/rma"
	"wdmlat/internal/sim"
)

func main() {
	osFlag := flag.String("os", "win98", "operating system: nt4, win98 or win2000")
	wlFlag := flag.String("workload", "games", "stress class providing the latency distribution")
	duration := flag.Duration("duration", 10*time.Minute, "virtual collection time")
	seed := flag.Uint64("seed", 1, "simulation seed")
	cli.AddVersionFlag("rma", flag.CommandLine)
	flag.Parse()

	osSel, err := cli.ParseOS(*osFlag)
	fatal(err)
	wl, err := cli.ParseWorkload(*wlFlag)
	fatal(err)

	r := core.Run(core.RunConfig{OS: osSel, Workload: wl, Duration: *duration, Seed: *seed})
	h := r.HwToThread[r.HighPriority()]
	freq := r.Freq
	observed := r.UsageObserved()

	fmt.Printf("Pseudo worst-case dispatch latency on %s under %v (§5.2)\n\n", r.OSName, wl)
	t := &report.Table{Headers: []string{"Permissible error rate", "Design latency (ms)"}}
	budgets := []struct {
		name   string
		period time.Duration
	}{
		{"one drop per 5 minutes (video conf audio)", 5 * time.Minute},
		{"one drop per 10 minutes", 10 * time.Minute},
		{"one drop per hour (soft modem)", time.Hour},
		{"one drop per day (high reliability)", 24 * time.Hour},
	}
	for _, b := range budgets {
		l := rma.PseudoWorstCase(h, observed, freq.Cycles(b.period))
		t.AddRow(b.name, fmt.Sprintf("%.2f", freq.Millis(l)))
	}
	fatal(t.Write(os.Stdout))

	// A representative host-based signal processing task set: soft modem
	// datapump (8 ms / 25%), low-latency audio mix (16 ms / 15%), video
	// capture post-processing (33 ms / 20%).
	block := rma.PseudoWorstCase(h, observed, freq.Cycles(time.Hour))
	tasks := []rma.Task{
		{Name: "softmodem datapump", Period: freq.FromMillis(8), Compute: freq.FromMillis(2), Blocking: block},
		{Name: "soft audio mixer", Period: freq.FromMillis(16), Compute: sim.Cycles(float64(freq.FromMillis(16)) * 0.15), Blocking: block},
		{Name: "video capture", Period: freq.FromMillis(33), Compute: sim.Cycles(float64(freq.FromMillis(33)) * 0.20), Blocking: block},
	}

	fmt.Printf("\nRate-monotonic analysis with the 1-per-hour design latency (%.2f ms) as blocking:\n",
		freq.Millis(block))
	fmt.Printf("utilization %.1f%%, Liu-Layland bound %.1f%%\n\n",
		rma.Utilization(tasks)*100, rma.LiuLaylandBound(len(tasks))*100)

	results, ok, err := rma.Analyze(tasks)
	if err != nil {
		// An infeasible design point is itself the §5.2 result: this OS
		// cannot host the task set at this error budget.
		fmt.Printf("task set infeasible at this design point: %v\n", err)
		return
	}
	rt := &report.Table{Headers: []string{"Task", "Period (ms)", "Compute (ms)", "Response (ms)", "Meets deadline"}}
	for _, res := range results {
		rt.AddRow(
			res.Task.Name,
			fmt.Sprintf("%.1f", freq.Millis(res.Task.Period)),
			fmt.Sprintf("%.1f", freq.Millis(res.Task.Compute)),
			fmt.Sprintf("%.1f", freq.Millis(res.Response)),
			fmt.Sprintf("%v", res.Meets),
		)
	}
	fatal(rt.Write(os.Stdout))
	if ok {
		fmt.Println("\nVerdict: schedulable at the chosen error budget.")
	} else {
		fmt.Println("\nVerdict: NOT schedulable at the chosen error budget on this OS.")
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "rma:", err)
		os.Exit(1)
	}
}
