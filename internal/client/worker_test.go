package client

// Worker-loop suite: semaphore accounting in workerSession (observed
// through the Max each lease request carries — the only externally
// visible shadow of the slot pool), the checkpoint-backed lease path
// (cache hits skip the simulator and are flagged to the coordinator),
// and RunWorker's survival of a coordinator restart.
//
// Every test scripts the coordinator side with an httptest server; the
// worker under test is the real client code with a recorded clock.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wdmlat/internal/api"
	"wdmlat/internal/campaign/store"
	"wdmlat/internal/core"
	"wdmlat/internal/ospersona"
	"wdmlat/internal/sim"
	"wdmlat/internal/workload"
)

// workerLease fabricates a lease that passes Verify: its fingerprint is
// derived exactly as the coordinator derives it.
func workerLease(t *testing.T, key string) api.Lease {
	t.Helper()
	cfg := core.RunConfig{OS: ospersona.NT4, Workload: workload.Business, Duration: time.Second}
	cfg.Seed = sim.DeriveSeed(7, key)
	return api.Lease{
		Fingerprint: store.Fingerprint(7, key, cfg),
		BaseSeed:    7,
		Key:         key,
		Config:      cfg,
	}
}

func workerFakeResult(cfg core.RunConfig) *core.Result {
	return &core.Result{Config: cfg, OSName: "workerfake", Samples: cfg.Seed%997 + 1}
}

// leaseStep scripts one lease response from the fake coordinator.
type leaseStep struct {
	grant    int  // leases to hand out (blocking cells)
	status   int  // if nonzero: answer this HTTP status instead
	draining bool // answer Draining: true
	release  bool // unblock all in-flight cells while serving this step
}

// scriptedCoordinator runs workerSession against a scripted lease
// endpoint. Granted cells block until a step with release fires. Once the
// script is exhausted, the coordinator grants nothing until a request
// arrives asking for the full slot count — proof no slot leaked — and
// then drains; a leaked slot therefore shows up as a test timeout, a
// double-released one as Max exceeding the configured cell count.
func scriptedCoordinator(t *testing.T, cells int, steps []leaseStep) (maxs []int, completions int, err error) {
	t.Helper()
	var mu sync.Mutex
	var recordedMaxs []int
	completed := 0
	step := 0
	release := make(chan struct{})
	var releaseOnce sync.Once

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/workers/w1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /v1/workers/w1/complete", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		completed++
		mu.Unlock()
		writeTestJSON(w, http.StatusOK, map[string]string{"status": "merged"})
	})
	mux.HandleFunc("POST /v1/workers/w1/leases", func(w http.ResponseWriter, r *http.Request) {
		var req api.LeaseRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("decoding lease request: %v", err)
		}
		mu.Lock()
		recordedMaxs = append(recordedMaxs, req.Max)
		var cur leaseStep
		scripted := step < len(steps)
		if scripted {
			cur = steps[step]
			step++
		}
		n := len(recordedMaxs)
		mu.Unlock()
		if !scripted {
			// Script exhausted: drain only once every slot is home.
			if req.Max == cells {
				writeTestJSON(w, http.StatusOK, api.LeaseResponse{Draining: true})
			} else {
				writeTestJSON(w, http.StatusOK, api.LeaseResponse{})
			}
			return
		}
		if cur.release {
			releaseOnce.Do(func() { close(release) })
		}
		if cur.status != 0 {
			writeTestJSON(w, cur.status, api.Error{Message: "scripted failure"})
			return
		}
		resp := api.LeaseResponse{Draining: cur.draining}
		for i := 0; i < cur.grant; i++ {
			resp.Leases = append(resp.Leases, workerLease(t, fmt.Sprintf("nt4/business/sem/%d-%d", n, i)))
		}
		writeTestJSON(w, http.StatusOK, resp)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c, _ := testClient(ts.URL, 2)
	// A huge TTL keeps the heartbeat ticker silent for the test's
	// lifetime; PollMillis 1 keeps idle re-polls (recorded, not slept)
	// instant.
	reg := api.RegisterResponse{WorkerID: "w1", LeaseTTLMillis: 3_600_000, PollMillis: 1}
	opts := WorkerOptions{
		Cells: cells,
		Execute: func(cfg core.RunConfig) *core.Result {
			<-release
			return workerFakeResult(cfg)
		},
	}
	done := make(chan error, 1)
	go func() { done <- c.workerSession(context.Background(), reg, opts) }()
	select {
	case err = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("workerSession did not return: a leaked slot keeps Max below the drain threshold forever")
	}
	releaseOnce.Do(func() { close(release) }) // scenarios that never release
	mu.Lock()
	defer mu.Unlock()
	return recordedMaxs, completed, err
}

func writeTestJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// TestWorkerSessionSemaphoreAccounting drives the slot pool through
// partial grants, zero grants, lease errors and the drain path, asserting
// no slot is ever leaked (Max returns to the full cell count) or
// double-released (Max never exceeds it).
func TestWorkerSessionSemaphoreAccounting(t *testing.T) {
	for _, tc := range []struct {
		name        string
		cells       int
		steps       []leaseStep
		wantErr     int   // expected *StatusError code, 0 for nil error
		wantPrefix  []int // exact leading Max sequence
		wantComplet int   // completions expected by session end (-1: don't check)
	}{
		{
			// Ask 3, get 1: the two unused reservations must return to the
			// pool (next ask is 2, not 0), and once the cell finishes every
			// ask is 3 again.
			name:        "partial grant returns unused slots",
			cells:       3,
			steps:       []leaseStep{{grant: 1}, {grant: 0}, {grant: 0, release: true}},
			wantPrefix:  []int{3, 2, 2},
			wantComplet: 1,
		},
		{
			// A lease error must hand back every reserved slot before the
			// session dies; the in-flight cell still drains through the
			// deferred wait.
			name:        "lease error releases reserved slots",
			cells:       3,
			steps:       []leaseStep{{grant: 1}, {status: http.StatusNotFound, release: true}},
			wantErr:     http.StatusNotFound,
			wantPrefix:  []int{3, 2},
			wantComplet: -1, // delivery races session teardown; either way is sound
		},
		{
			// Draining with a cell in flight: the session must wait for the
			// cell's completion before returning nil.
			name:        "drain waits for in-flight cells",
			cells:       2,
			steps:       []leaseStep{{grant: 1}, {draining: true, release: true}},
			wantPrefix:  []int{2, 1},
			wantComplet: 1,
		},
		{
			// Idle polling must not bleed slots: every empty grant returns
			// everything it reserved.
			name:        "zero grants keep the pool full",
			cells:       2,
			steps:       []leaseStep{{grant: 0}, {grant: 0}, {grant: 0}},
			wantPrefix:  []int{2, 2, 2},
			wantComplet: 0,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			maxs, completions, err := scriptedCoordinator(t, tc.cells, tc.steps)
			if tc.wantErr == 0 {
				if err != nil {
					t.Fatalf("session err = %v, want nil", err)
				}
			} else {
				var se *StatusError
				if !errors.As(err, &se) || se.Code != tc.wantErr {
					t.Fatalf("session err = %v, want status %d", err, tc.wantErr)
				}
			}
			if len(maxs) < len(tc.wantPrefix) {
				t.Fatalf("lease requests %v, want at least %d", maxs, len(tc.wantPrefix))
			}
			for i, want := range tc.wantPrefix {
				if maxs[i] != want {
					t.Fatalf("lease request %d asked Max=%d, want %d (full sequence %v)", i, maxs[i], want, maxs)
				}
			}
			for i, m := range maxs {
				if m > tc.cells {
					t.Fatalf("lease request %d asked Max=%d > %d cells: a slot was double-released (%v)", i, m, tc.cells, maxs)
				}
			}
			if tc.wantComplet >= 0 && completions != tc.wantComplet {
				t.Fatalf("completions = %d, want %d", completions, tc.wantComplet)
			}
		})
	}
}

// cacheWorkerCoordinator scripts a coordinator that grants the same lease
// `grants` times, then drains. It records every completion request.
func cacheWorkerCoordinator(t *testing.T, l api.Lease, grants int) (*httptest.Server, *[]api.CompleteRequest) {
	t.Helper()
	var mu sync.Mutex
	var completes []api.CompleteRequest
	granted := 0
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/workers", func(w http.ResponseWriter, r *http.Request) {
		writeTestJSON(w, http.StatusOK, api.RegisterResponse{WorkerID: "w1", LeaseTTLMillis: 3_600_000, PollMillis: 1})
	})
	mux.HandleFunc("POST /v1/workers/w1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /v1/workers/w1/leases", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		if granted < grants {
			granted++
			writeTestJSON(w, http.StatusOK, api.LeaseResponse{Leases: []api.Lease{l}})
			return
		}
		writeTestJSON(w, http.StatusOK, api.LeaseResponse{Draining: true})
	})
	mux.HandleFunc("POST /v1/workers/w1/complete", func(w http.ResponseWriter, r *http.Request) {
		var req api.CompleteRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("decoding completion: %v", err)
		}
		mu.Lock()
		completes = append(completes, req)
		mu.Unlock()
		writeTestJSON(w, http.StatusOK, map[string]string{"status": "merged"})
	})
	return httptest.NewServer(mux), &completes
}

// TestWorkerAnswersLeaseFromCheckpointStore: a fingerprint already in the
// worker's store is delivered without touching the simulator, flagged
// Cached, and byte-identical to the canonical encoding of the stored
// result.
func TestWorkerAnswersLeaseFromCheckpointStore(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	l := workerLease(t, "nt4/business/cached/0")
	res := workerFakeResult(l.Config)
	if err := st.Save(l.Fingerprint, res); err != nil {
		t.Fatal(err)
	}
	ts, completes := cacheWorkerCoordinator(t, l, 1)
	defer ts.Close()

	var executions atomic.Int32
	c, _ := testClient(ts.URL, 3)
	err = c.RunWorker(context.Background(), WorkerOptions{
		Store: st,
		Execute: func(cfg core.RunConfig) *core.Result {
			executions.Add(1)
			return workerFakeResult(cfg)
		},
	})
	if err != nil {
		t.Fatalf("RunWorker: %v", err)
	}
	if n := executions.Load(); n != 0 {
		t.Fatalf("simulator ran %d times for a cached cell, want 0", n)
	}
	if len(*completes) != 1 {
		t.Fatalf("completions = %d, want 1", len(*completes))
	}
	req := (*completes)[0]
	if !req.Cached {
		t.Fatal("cache-served completion not flagged Cached")
	}
	want, err := api.EncodeCellResult(res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(req.Result, want) {
		t.Fatalf("cached payload differs from canonical encoding:\n%s\nvs\n%s", req.Result, want)
	}
}

// TestWorkerPopulatesStoreOnMiss: a miss executes once and checkpoints the
// result, so the same lease re-granted (a straggler re-dispatch) is a
// cache hit with byte-identical payload.
func TestWorkerPopulatesStoreOnMiss(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	l := workerLease(t, "nt4/business/miss/0")
	ts, completes := cacheWorkerCoordinator(t, l, 2)
	defer ts.Close()

	var executions atomic.Int32
	c, _ := testClient(ts.URL, 3)
	err = c.RunWorker(context.Background(), WorkerOptions{
		Store: st,
		Execute: func(cfg core.RunConfig) *core.Result {
			executions.Add(1)
			return workerFakeResult(cfg)
		},
	})
	if err != nil {
		t.Fatalf("RunWorker: %v", err)
	}
	if n := executions.Load(); n != 1 {
		t.Fatalf("simulator ran %d times, want exactly 1 (second grant from cache)", n)
	}
	if len(*completes) != 2 {
		t.Fatalf("completions = %d, want 2", len(*completes))
	}
	first, second := (*completes)[0], (*completes)[1]
	if first.Cached {
		t.Fatal("first completion flagged Cached on an empty store")
	}
	if !second.Cached {
		t.Fatal("re-granted completion not served from the checkpoint store")
	}
	if !bytes.Equal(first.Result, second.Result) {
		t.Fatal("cached redelivery is not byte-identical to the executed delivery")
	}
	if saved, err := st.Load(l.Fingerprint); err != nil || saved == nil {
		t.Fatalf("executed result not checkpointed: (%v, %v)", saved, err)
	}
}

// TestRunWorkerSurvivesCoordinatorRestart: an established worker whose
// session dies on transport failures (coordinator down) re-registers and
// keeps working, rather than exiting and stranding the fleet.
func TestRunWorkerSurvivesCoordinatorRestart(t *testing.T) {
	var mu sync.Mutex
	registrations := 0
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/workers", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		registrations++
		n := registrations
		mu.Unlock()
		writeTestJSON(w, http.StatusOK, api.RegisterResponse{
			WorkerID: fmt.Sprintf("w%d", n), LeaseTTLMillis: 3_600_000, PollMillis: 1,
		})
	})
	mux.HandleFunc("POST /v1/workers/{id}/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /v1/workers/{id}/leases", func(w http.ResponseWriter, r *http.Request) {
		// The first identity's session dies on persistent 500s (the
		// "coordinator restart" exhausts the client's retry budget); the
		// re-registered identity finds a healthy coordinator.
		if r.PathValue("id") == "w1" {
			writeTestJSON(w, http.StatusInternalServerError, api.Error{Message: "coordinator went down"})
			return
		}
		writeTestJSON(w, http.StatusOK, api.LeaseResponse{Draining: true})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c, _ := testClient(ts.URL, 2)
	err := c.RunWorker(context.Background(), WorkerOptions{
		Execute: func(cfg core.RunConfig) *core.Result { return workerFakeResult(cfg) },
	})
	if err != nil {
		t.Fatalf("RunWorker = %v, want nil (drained after re-registering)", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if registrations != 2 {
		t.Fatalf("registrations = %d, want 2 (initial + post-restart)", registrations)
	}
}
