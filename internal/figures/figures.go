// Package figures builds the paper's tables and figures from experiment
// results, as renderable report structures. The cmd/ tools and the one-shot
// cmd/reproduce orchestrator share these builders, so every artifact has
// exactly one construction path.
package figures

import (
	"fmt"

	"wdmlat/internal/campaign"
	"wdmlat/internal/core"
	"wdmlat/internal/mttf"
	"wdmlat/internal/ospersona"
	"wdmlat/internal/report"
	"wdmlat/internal/stats"
	"wdmlat/internal/workload"
)

// Table1 builds the latency-tolerance table.
func Table1() *report.Table {
	t := &report.Table{
		Title: "Table 1: Range of Latency Tolerances for Several Multimedia and Signal\n" +
			"Processing Applications, tolerance (n-1)*t ms.",
		Headers: []string{
			"Application", "Buffer size in ms. (t)", "Number of buffers (n)", "Latency Tolerance (n-1)*t",
		},
	}
	for _, row := range mttf.Table1() {
		t.AddRow(
			row.App.Name,
			fmt.Sprintf("%.0f to %.0f", row.App.BufMinMS, row.App.BufMaxMS),
			fmt.Sprintf("%d to %d", row.App.BuffersMin, row.App.BuffersMax),
			fmt.Sprintf("%.0f to %.0f", row.TolLoMS, row.TolHiMS),
		)
	}
	return t
}

// Table2 builds the system-configuration table for one OS.
func Table2(osSel ospersona.OS) *report.Table {
	c := core.SystemConfigFor(osSel)
	t := &report.Table{
		Title:   fmt.Sprintf("Table 2: Test System Configuration — %v", osSel),
		Headers: []string{"Item", "Value"},
	}
	t.AddRow("OS version", c.OSVersion)
	if c.OptionalPack != "" {
		t.AddRow("Optional OS components", c.OptionalPack)
	}
	t.AddRow("Filesystem", c.Filesystem)
	t.AddRow("IDE driver", c.IDEDriver)
	t.AddRow("Processor & speed", c.Processor)
	t.AddRow("Motherboard", c.Motherboard)
	t.AddRow("BIOS ver.", c.BIOS)
	t.AddRow("Memory", c.Memory)
	t.AddRow("Hard drive", c.HardDrive)
	t.AddRow("CD-ROM drive", c.CDROM)
	t.AddRow("AGP graphics", c.Graphics)
	t.AddRow("Resolution", c.Resolution)
	t.AddRow("Audio solution", c.Audio)
	t.AddRow("Network", c.Network)
	t.AddRow("PIT", c.PITFrequency)
	t.AddRow("Legacy ISA devices", c.LegacyISADevices)
	return t
}

// Table3 builds the hourly/daily/weekly worst-case table from per-workload
// results (all on the same OS).
func Table3(results map[workload.Class]*core.Result, title string) *report.Table {
	t := &report.Table{Title: title, Headers: []string{"OS Service"}}
	for _, wl := range workload.Classes {
		for _, h := range []string{"Hr", "Day", "Wk"} {
			t.Headers = append(t.Headers, fmt.Sprintf("%s %s", ShortName(wl), h))
		}
	}

	addRow := func(label string, pick func(r *core.Result) *stats.Histogram, base func(r *core.Result) *stats.Histogram) {
		row := []string{label}
		for _, wl := range workload.Classes {
			r := results[wl]
			h := pick(r)
			if h == nil {
				row = append(row, "n/a", "n/a", "n/a")
				continue
			}
			wc := r.WorstCaseRow(h)
			if base != nil {
				b := r.WorstCaseRow(base(r))
				for i := range wc {
					d := wc[i] - b[i]
					if d < 0 {
						d = 0
					}
					row = append(row, "+ "+report.Millis(d))
				}
				continue
			}
			for i := range wc {
				row = append(row, report.Millis(wc[i]))
			}
		}
		t.AddRow(row...)
	}

	addRow("H/W Int. to S/W ISR", func(r *core.Result) *stats.Histogram { return r.IntLat }, nil)
	addRow("S/W ISR to DPC", func(r *core.Result) *stats.Histogram {
		if r.IntLat == nil {
			return nil
		}
		return r.DpcInt
	}, func(r *core.Result) *stats.Histogram { return r.IntLat })
	addRow("H/W Interrupt to DPC", func(r *core.Result) *stats.Histogram { return r.DpcInt }, nil)
	addRow("DPC to kernel RT thread (High Priority)",
		func(r *core.Result) *stats.Histogram { return r.Thread[r.HighPriority()] }, nil)
	addRow("H/W Int. to kernel RT thread (High Priority)",
		func(r *core.Result) *stats.Histogram { return r.HwToThread[r.HighPriority()] }, nil)
	addRow("DPC to kernel RT thread (Med. Priority)",
		func(r *core.Result) *stats.Histogram { return r.Thread[r.MediumPriority()] }, nil)
	addRow("H/W Int. to kernel RT thread (Med. Priority)",
		func(r *core.Result) *stats.Histogram { return r.HwToThread[r.MediumPriority()] }, nil)
	return t
}

// ShortName abbreviates a workload class for table headers.
func ShortName(c workload.Class) string {
	switch c {
	case workload.Business:
		return "Office"
	case workload.Workstation:
		return "Wkstn"
	case workload.Games:
		return "Games"
	case workload.Web:
		return "Web"
	default:
		return c.String()
	}
}

// Figure4Panels builds the three Figure 4 panels (DPC-interrupt, RT-28
// thread, RT-24 thread) for one OS, one series per workload class, in the
// paper's axis ranges.
func Figure4Panels(results map[workload.Class]*core.Result) (dpc, t28, t24 []report.Series) {
	for _, wl := range workload.Classes {
		r, ok := results[wl]
		if !ok {
			continue
		}
		label := wl.String()
		dpc = append(dpc, report.NewSeries(label, r.DpcInt, 1, 128))
		t28 = append(t28, report.NewSeries(label, r.Thread[r.HighPriority()], 0.125, 128))
		t24 = append(t24, report.NewSeries(label, r.Thread[r.MediumPriority()], 0.125, 128))
	}
	return dpc, t28, t24
}

// Figure4BandPanels is Figure4Panels with the simultaneous DKW confidence
// band attached to every series, for the band-CSV form of the figure.
func Figure4BandPanels(results map[workload.Class]*core.Result, confidence float64) (dpc, t28, t24 []report.BandSeries) {
	for _, wl := range workload.Classes {
		r, ok := results[wl]
		if !ok {
			continue
		}
		label := wl.String()
		dpc = append(dpc, report.NewBandSeries(label, r.DpcInt, 1, 128, confidence))
		t28 = append(t28, report.NewBandSeries(label, r.Thread[r.HighPriority()], 0.125, 128, confidence))
		t24 = append(t24, report.NewBandSeries(label, r.Thread[r.MediumPriority()], 0.125, 128, confidence))
	}
	return dpc, t28, t24
}

// PrecisionTable summarizes an adaptive campaign's statistical outcome: one
// row per logical cell and watched distribution, with the replica count the
// stopping rule settled on, the convergence verdict, and each policy
// quantile's estimate with its DKW confidence interval in milliseconds.
// prec is normalized internally, so a shorthand policy is fine.
func PrecisionTable(oses []ospersona.OS, classes []workload.Class, variant string,
	results map[ospersona.OS]map[workload.Class]*core.Result,
	ads map[string]campaign.Adaptive, prec stats.Precision, title string) *report.Table {
	p := prec.Normalized()
	t := &report.Table{Title: title, Headers: []string{"Cell", "Distribution", "Replicas", "Converged"}}
	for _, q := range p.Quantiles {
		t.Headers = append(t.Headers, fmt.Sprintf("p%g ms [%.0f%% CI]", q*100, p.Confidence*100))
	}
	for _, o := range oses {
		for _, c := range classes {
			r, ok := results[o][c]
			if !ok {
				continue
			}
			key := campaign.MatrixKey(o, c, variant)
			ad := ads[key]
			dists := []struct {
				name string
				h    *stats.Histogram
			}{
				{"DPC interrupt", r.DpcInt},
				{fmt.Sprintf("RT %d thread", r.HighPriority()), r.Thread[r.HighPriority()]},
				{fmt.Sprintf("RT %d thread", r.MediumPriority()), r.Thread[r.MediumPriority()]},
			}
			for _, d := range dists {
				if d.h == nil {
					continue
				}
				row := []string{key, d.name, fmt.Sprintf("%d", ad.Replicas), fmt.Sprintf("%v", ad.Converged)}
				for _, q := range p.Quantiles {
					lo, est, hi := d.h.QuantileCI(q, p.Confidence)
					row = append(row, report.CIMillis(r.Freq.Millis(est), r.Freq.Millis(lo), r.Freq.Millis(hi)))
				}
				t.AddRow(row...)
			}
		}
	}
	return t
}

// MTTFTable builds a Figure 6/7 table: one column per workload, one row per
// buffering level.
func MTTFTable(curves map[workload.Class][]mttf.Point, title string) *report.Table {
	t := &report.Table{Title: title, Headers: []string{"Buffering (ms)"}}
	var first []mttf.Point
	for _, wl := range workload.Classes {
		if c, ok := curves[wl]; ok {
			t.Headers = append(t.Headers, wl.String()+" MTTF(s)")
			if first == nil {
				first = c
			}
		}
	}
	for i := range first {
		row := []string{fmt.Sprintf("%.0f", first[i].BufferingMS)}
		for _, wl := range workload.Classes {
			c, ok := curves[wl]
			if !ok {
				continue
			}
			cell := fmt.Sprintf("%.0f", c[i].MTTFSeconds)
			if c[i].Censored {
				cell = ">" + cell
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	return t
}
