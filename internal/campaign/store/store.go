// Package store is the campaign checkpoint store: one encoded core.Result
// per finished cell, on disk, keyed by a content fingerprint of everything
// the cell's result depends on. A killed multi-hour campaign resumes by
// re-submitting the same cells against the same store directory — cells
// whose fingerprints are present replay from disk, the rest re-run — and
// because cell results are deterministic functions of (base seed, key,
// config) and the codec round-trips exactly, a resumed campaign's
// artifacts are byte-identical to an uninterrupted run's.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"wdmlat/internal/core"
	"wdmlat/internal/metrics"
)

// Metric names the store publishes once instrumented (see Instrument).
const (
	MetricReads           = "store_reads"              // checkpoints successfully loaded
	MetricWrites          = "store_writes"             // checkpoints successfully persisted
	MetricFingerprintMiss = "store_fingerprint_misses" // lookups with no stored entry
)

// Store is an on-disk per-cell result store. Methods are safe for
// concurrent use by campaign workers: each cell writes its own file, and
// writes are atomic (temp file + rename), so a crash mid-write never
// leaves a truncated checkpoint behind under the final name.
type Store struct {
	dir string

	// Telemetry handles (nil-safe no-ops until Instrument is called).
	// Strictly out-of-band: counters never influence what is read or
	// written, only report it.
	reads, writes, misses *metrics.Counter
}

// Open creates (if needed) and opens a checkpoint directory, sweeping any
// temp files (`.<fp>.tmp-*`) a crashed Save left behind. The sweep is safe
// because a temp file is only ever visible between CreateTemp and Rename
// inside one Save call, and Open precedes sharing the store with writers:
// a temp that exists at Open time belongs to a process that died mid-write
// and would otherwise leak forever.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasPrefix(name, ".") && strings.Contains(name, ".tmp-") {
			// Best effort: a sweep that loses a race with a concurrent
			// remover is fine, and a live store still works around an
			// unremovable orphan (Save uses fresh temp names).
			_ = os.Remove(filepath.Join(dir, name))
		}
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Instrument attaches the store's telemetry counters to reg. Call before
// the store is shared with campaign workers; a nil registry leaves the
// counters as no-ops.
func (s *Store) Instrument(reg *metrics.Registry) {
	s.reads = reg.Counter(MetricReads)
	s.writes = reg.Counter(MetricWrites)
	s.misses = reg.Counter(MetricFingerprintMiss)
}

// Fingerprint identifies one cell's result content: SHA-256 over the
// result codec version (which stands in for "code version" — it is bumped
// whenever the encoding or the simulation's observable output changes),
// the campaign base seed, the cell key, and the canonical JSON encoding of
// the cell's full RunConfig (with the derived per-cell seed filled in).
// Struct JSON is canonical here: fields marshal in declaration order, so
// equal configs hash equal, and any added RunConfig field changes the
// encoding and safely invalidates old checkpoints.
func Fingerprint(baseSeed uint64, key string, cfg core.RunConfig) string {
	cfgJSON, err := json.Marshal(cfg)
	if err != nil {
		// RunConfig is a plain data struct; its marshal cannot fail.
		panic(fmt.Sprintf("store: marshal RunConfig: %v", err))
	}
	h := sha256.New()
	fmt.Fprintf(h, "wdmlat-result-v%d\x00%d\x00%s\x00", core.ResultCodecVersion, baseSeed, key)
	h.Write(cfgJSON)
	return hex.EncodeToString(h.Sum(nil))
}

func (s *Store) path(fp string) string {
	return filepath.Join(s.dir, fp+".json")
}

// Load returns the stored result for fp, or (nil, nil) when the store has
// no entry. An unreadable or corrupt entry is an error — the caller
// decides whether to re-run the cell (the campaign runner does) or abort.
func (s *Store) Load(fp string) (*core.Result, error) {
	f, err := os.Open(s.path(fp))
	if errors.Is(err, fs.ErrNotExist) {
		s.misses.Inc()
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	res, err := core.DecodeResult(f)
	if err != nil {
		return nil, fmt.Errorf("store: checkpoint %s: %w", fp, err)
	}
	s.reads.Inc()
	return res, nil
}

// Save atomically persists res under fp: the encoding lands in a temp file
// in the store directory and is renamed into place only once fully
// written and synced, so concurrent readers and crash recovery only ever
// see complete checkpoints.
func (s *Store) Save(fp string, res *core.Result) error {
	tmp, err := os.CreateTemp(s.dir, "."+fp+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := core.EncodeResult(tmp, res); err != nil {
		tmp.Close()
		return fmt.Errorf("store: checkpoint %s: %w", fp, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(fp)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.writes.Inc()
	return nil
}
