package stats

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Precision is a campaign's statistical-precision policy: run independent
// replicas of a measurement cell until the requested tail quantiles of its
// pooled distributions are known to a requested relative half-width at a
// requested confidence, as judged by the distribution-free DKW bands of
// dkw.go. The policy is data-only — every field feeds a pure function of
// the pooled histograms — so a campaign that applies it stays byte-for-byte
// deterministic at any worker count and across resume and fleet execution.
//
// The zero value is not a valid policy; fill RelWidth and call Normalized
// (which supplies the documented defaults for everything else).
type Precision struct {
	// Quantiles are the tail quantiles the stopping rule must pin down,
	// each in (0,1). Default: 0.99 and 0.999 — the paper's tail-claim
	// region (Figure 4 bottoms out around the 99.99th percentile, but
	// p99/p99.9 are where Table 3's horizon math lives).
	Quantiles []float64 `json:"quantiles,omitempty"`
	// RelWidth is the target relative half-width: replicas stop once, for
	// every watched distribution and quantile q, the DKW confidence
	// interval [lo,hi] satisfies (hi-lo)/2 <= RelWidth * estimate.
	// Required, in (0,1].
	RelWidth float64 `json:"rel_width"`
	// Confidence is the simultaneous band confidence used for the DKW
	// epsilon, in (0,1). Default 0.95.
	Confidence float64 `json:"confidence,omitempty"`
	// MinRuns is the replica count every cell starts with (>= 1; also the
	// minimum the steady-state window needs). Default 3.
	MinRuns int `json:"min_runs,omitempty"`
	// MaxRuns is the hard replica cap: a cell that reaches it unconverged
	// stops anyway and is counted as a convergence failure. Default 64.
	MaxRuns int `json:"max_runs,omitempty"`
	// Batch is how many replicas are added per evaluation round after
	// MinRuns. Part of the policy's identity: a different batch schedule
	// evaluates the stopping rule at different prefixes and may stop at a
	// different replica count. Default 1.
	Batch int `json:"batch,omitempty"`
}

// Default policy knobs, exported so flag help and docs quote one source.
const (
	DefaultConfidence = 0.95
	DefaultMinRuns    = 3
	DefaultMaxRuns    = 64
	DefaultBatch      = 1
)

// DefaultQuantiles returns the default watched quantiles (fresh slice).
func DefaultQuantiles() []float64 { return []float64{0.99, 0.999} }

// Normalized returns the policy with every zero-valued knob replaced by
// its documented default. Quantiles are sorted ascending (the stopping
// rule is a conjunction, so order is cosmetic, but Canonical — and
// therefore every content address — must not depend on input order).
func (p Precision) Normalized() Precision {
	if len(p.Quantiles) == 0 {
		p.Quantiles = DefaultQuantiles()
	} else {
		p.Quantiles = append([]float64(nil), p.Quantiles...)
		sort.Float64s(p.Quantiles)
	}
	if p.Confidence == 0 {
		p.Confidence = DefaultConfidence
	}
	if p.MinRuns == 0 {
		p.MinRuns = DefaultMinRuns
	}
	if p.MaxRuns == 0 {
		p.MaxRuns = DefaultMaxRuns
	}
	if p.Batch == 0 {
		p.Batch = DefaultBatch
	}
	return p
}

// Validate rejects policies the adaptive runner cannot honor. It validates
// the normalized form, so callers may pass shorthand (zero) knobs.
func (p Precision) Validate() error {
	n := p.Normalized()
	if !(n.RelWidth > 0 && n.RelWidth <= 1) {
		return fmt.Errorf("stats: precision rel_width %v outside (0,1]", p.RelWidth)
	}
	if !(n.Confidence > 0 && n.Confidence < 1) {
		return fmt.Errorf("stats: precision confidence %v outside (0,1)", p.Confidence)
	}
	for _, q := range n.Quantiles {
		if !(q > 0 && q < 1) {
			return fmt.Errorf("stats: precision quantile %v outside (0,1)", q)
		}
	}
	if n.MinRuns < 1 {
		return fmt.Errorf("stats: precision min_runs %d < 1", p.MinRuns)
	}
	if n.MaxRuns < n.MinRuns {
		return fmt.Errorf("stats: precision max_runs %d < min_runs %d", n.MaxRuns, n.MinRuns)
	}
	if n.Batch < 1 {
		return fmt.Errorf("stats: precision batch %d < 1", p.Batch)
	}
	return nil
}

// Canonical renders the normalized policy as a stable string, the form the
// campaign content address hashes: two policies that request the same
// stopping rule canonicalize identically regardless of which knobs were
// spelled out and in what order the quantiles were listed.
func (p Precision) Canonical() string {
	n := p.Normalized()
	qs := make([]string, len(n.Quantiles))
	for i, q := range n.Quantiles {
		qs[i] = strconv.FormatFloat(q, 'g', -1, 64)
	}
	return fmt.Sprintf("q=%s;w=%s;c=%s;min=%d;max=%d;batch=%d",
		strings.Join(qs, ","),
		strconv.FormatFloat(n.RelWidth, 'g', -1, 64),
		strconv.FormatFloat(n.Confidence, 'g', -1, 64),
		n.MinRuns, n.MaxRuns, n.Batch)
}

// SteadyState reports whether the tail of a replica-sequence estimate has
// settled: true iff the series has at least window entries and every one
// of the last window values lies within relTol of the final value
// (relative to the final value; a zero final value requires exact zeros).
// It is the deterministic steady-state test the adaptive stopping rule
// applies to per-replica quantile trajectories: a pure function of the
// series, so any two processes that observed the same replica prefix
// agree on it.
func SteadyState(series []float64, window int, relTol float64) bool {
	if window < 1 || len(series) < window {
		return false
	}
	ref := series[len(series)-1]
	for _, v := range series[len(series)-window:] {
		if ref == 0 {
			if v != 0 {
				return false
			}
			continue
		}
		if math.Abs(v-ref) > relTol*math.Abs(ref) {
			return false
		}
	}
	return true
}
