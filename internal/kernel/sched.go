package kernel

import (
	"math/bits"

	"wdmlat/internal/cpu"
	"wdmlat/internal/sim"
)

// pushReadyBack appends t to the tail of its priority's ready queue.
func (k *Kernel) pushReadyBack(t *Thread) {
	k.ready[t.priority] = append(k.ready[t.priority], t)
	k.readyMask |= 1 << uint(t.priority)
}

// pushReadyFront prepends t, used when a thread is preempted so it runs
// next among its peers. The shift happens in the existing backing array:
// ready queues are short and preemption is frequent, so reallocating per
// preemption would dominate the queue cost.
func (k *Kernel) pushReadyFront(t *Thread) {
	q := append(k.ready[t.priority], nil)
	copy(q[1:], q)
	q[0] = t
	k.ready[t.priority] = q
	k.readyMask |= 1 << uint(t.priority)
}

// bestReadyPriority returns the highest priority with a ready thread, or -1.
func (k *Kernel) bestReadyPriority() int {
	return bits.Len32(k.readyMask) - 1
}

// popReady removes and returns the head of the given priority queue. The
// remainder shifts down in place: reslicing from the front would shed one
// slot of capacity per pop and force the next push to reallocate.
func (k *Kernel) popReady(p int) *Thread {
	q := k.ready[p]
	t := q[0]
	n := copy(q, q[1:])
	q[n] = nil
	k.ready[p] = q[:n]
	if n == 0 {
		k.readyMask &^= 1 << uint(p)
	}
	return t
}

// hasReadyAt reports whether another thread is ready at priority p.
func (k *Kernel) hasReadyAt(p int) bool { return len(k.ready[p]) > 0 }

// Current returns the thread currently owning the CPU base level, or nil.
func (k *Kernel) Current() *Thread { return k.current }

// scheduleStep runs once the occupancy stack is empty. It decides which
// thread owns the CPU and either commits the CPU (returns false: an exec
// segment or context switch is in flight, or the CPU went idle) or asks the
// dispatch loop to re-evaluate (returns true).
func (k *Kernel) scheduleStep() bool {
	if t := k.current; t != nil {
		if t.state != threadRunning {
			panic("kernel: current thread " + t.Name + " in state " + t.state.String())
		}
		// Preemption check: a higher-priority thread boots the current one
		// back to the head of its ready queue.
		if best := k.bestReadyPriority(); best > t.priority {
			k.suspendExec(t, k.now())
			t.state = threadReady
			t.readiedAt = k.now()
			k.pushReadyFront(t)
			k.current = nil
			return true
		}
		if t.execRemaining > 0 {
			if t.execDone == nil {
				k.beginExecSegment(t)
			}
			return false
		}
		if t.needsResume {
			return k.serveOne(t)
		}
		panic("kernel: running thread " + t.Name + " has nothing to do")
	}

	best := k.bestReadyPriority()
	if best < 0 {
		return false // idle: the CPU waits for the next interrupt
	}
	next := k.popReady(best)
	k.startSwitch(next)
	return true
}

// startSwitch models the context-switch cost as a scheduler-locked
// activity; the incoming thread is in standby until it completes. Including
// the cost inline (rather than as a free transition) is deliberate: the
// paper defines thread latency to *include* context switch and cache refill
// time (§2.1), unlike hbench-style microbenchmarks.
func (k *Kernel) startSwitch(next *Thread) {
	next.state = threadStandby
	next.switchReadiedAt = next.readiedAt
	act := k.newActivity()
	act.kind = actSwitch
	act.level = levelSchedLock
	act.label = next.labelSwitch
	act.doneLabel = next.labelSwitch
	act.frame = cpu.Frame{Module: "NTKERN", Function: "_SwapContext"}
	act.remaining = k.draw(k.cfg.ContextSwitch)
	act.onComplete = next.onSwitchDoneFn
	k.occupy(act)
}

// beginExecSegment (re)starts the clock on the current thread's pending
// execution.
func (k *Kernel) beginExecSegment(t *Thread) {
	t.segStart = k.now()
	t.execDone = k.eng.After(t.execRemaining, t.labelExec, t.onExecDoneFn)
	if k.cfg.Quantum > 0 {
		if t.quantumLeft <= 0 {
			t.quantumLeft = k.cfg.Quantum
		}
		// Only arm the expiry event when it can actually fire: a segment
		// shorter than the remaining quantum completes first (equal due
		// times dispatch the earlier-scheduled completion first, which
		// cancels the expiry), so the event would be pure queue churn.
		// quantumLeft bookkeeping is unaffected — every suspend/complete
		// path decrements it by elapsed time regardless.
		if t.execRemaining >= t.quantumLeft {
			t.quantumEvent = k.eng.After(t.quantumLeft, t.labelQuantum, t.onQuantumFn)
		}
	}
}

// suspendExec pauses the current thread's execution segment, charging
// elapsed time to the thread and its quantum.
func (k *Kernel) suspendExec(t *Thread, now sim.Time) {
	if t.execDone == nil {
		return
	}
	elapsed := now.Sub(t.segStart)
	k.eng.Cancel(t.execDone)
	t.execDone = nil
	if t.quantumEvent != nil {
		k.eng.Cancel(t.quantumEvent)
		t.quantumEvent = nil
	}
	if elapsed > t.execRemaining {
		elapsed = t.execRemaining
	}
	t.execRemaining -= elapsed
	t.quantumLeft -= elapsed
	t.cpuTime += elapsed
	k.counters.ThreadCycles += elapsed
	if t.execRemaining == 0 {
		// Suspended at the exact instant the segment completed (the
		// cancelled completion event shared this timestamp): the request
		// is satisfied, so the goroutine owes us a resume, not an exec.
		t.needsResume = true
	}
}

// onExecDone fires when the current exec segment runs to completion.
func (k *Kernel) onExecDone(t *Thread, now sim.Time) {
	elapsed := now.Sub(t.segStart)
	t.execDone = nil
	if t.quantumEvent != nil {
		k.eng.Cancel(t.quantumEvent)
		t.quantumEvent = nil
	}
	t.execRemaining = 0
	t.quantumLeft -= elapsed
	t.cpuTime += elapsed
	k.counters.ThreadCycles += elapsed
	t.needsResume = true
	k.maybeRun()
}

// onQuantumExpiry fires when the running thread exhausts its timeslice. If
// a peer is ready at the same priority the thread round-robins to the tail
// of its queue; otherwise the quantum simply refreshes. This is the
// mechanism that makes the NT work-item worker (RT default priority)
// interfere with the paper's priority-24 measurement thread while leaving
// the priority-28 thread untouched (§4.2).
func (k *Kernel) onQuantumExpiry(t *Thread, now sim.Time) {
	t.quantumEvent = nil
	// Boost decay: one level per expired quantum, back toward the base.
	if t.priority > t.base {
		t.priority--
	}
	if !k.hasReadyAt(t.priority) {
		t.quantumLeft = k.cfg.Quantum
		if t.execDone != nil {
			t.quantumEvent = k.eng.After(t.quantumLeft, t.labelQuantum, t.onQuantumFn)
		}
		return
	}
	// Round-robin: pause the exec, refresh the quantum, go to the tail.
	k.suspendExec(t, now)
	t.quantumLeft = k.cfg.Quantum
	t.state = threadReady
	t.readiedAt = now
	k.pushReadyBack(t)
	k.current = nil
	k.maybeRun()
}

// serveOne resumes the current thread's goroutine for exactly one request
// and applies it. The goroutine runs in zero virtual time; only Exec/Wait
// let time pass. The return value follows the scheduleStep contract: true
// asks the dispatch loop to re-evaluate, false means the CPU is committed.
func (k *Kernel) serveOne(t *Thread) bool {
	t.needsResume = false
	msg := t.resumeVal
	t.resumeVal = resumeMsg{}
	t.resume <- msg
	req := <-k.reqCh

	switch req.kind {
	case reqExec:
		if req.cycles <= 0 {
			t.needsResume = true // zero-length exec: immediately runnable again
			return true
		}
		// Start the segment right away: a resumed body holds the CPU with
		// nothing above thread level pending (the loop drained it all before
		// resuming, and inline calls that arm such work yield back), and the
		// ready set is unchanged since the last preemption check, so the
		// loop pass that would otherwise start it is provably a no-op.
		t.execRemaining = req.cycles
		k.beginExecSegment(t)
		return false

	case reqCall:
		req.fn()
		t.needsResume = true

	case reqYield:
		t.needsResume = true

	case reqPanic:
		panic(req.pv)

	case reqRaisedExec:
		// Same argument as reqExec: once the raised section occupies the
		// CPU, the skipped loop pass would only find it running and return.
		return k.beginRaisedExec(t, req)

	case reqWait:
		k.beginWait(t, req)

	case reqWaitAny:
		k.beginWaitAny(t, req)

	case reqExit:
		t.state = threadTerminated
		t.terminated = true
		k.current = nil
		t.doneEvent.set()
	}
	return true
}

// beginRaisedExec runs a thread's raised-IRQL section as a CPU occupancy at
// the matching preemption level: DISPATCH_LEVEL blocks DPCs and
// rescheduling, device IRQLs additionally hold off lower interrupts, and
// HIGH_LEVEL masks everything. The thread stays current; its goroutine
// resumes when the section completes.
func (k *Kernel) beginRaisedExec(t *Thread, req *request) bool {
	if req.cycles <= 0 {
		t.needsResume = true
		return true
	}
	level := levelDispatch
	switch {
	case req.irql >= HighLevel:
		level = levelIntMask
	case req.irql >= MinDeviceIRQL:
		level = isrLevel(req.irql)
	}
	t.raisedCycles = req.cycles
	act := k.newActivity()
	act.kind = actEpisode
	act.level = level
	act.label = t.labelRaised
	act.doneLabel = t.labelRaised
	act.frame = cpu.Frame{Module: t.Name, Function: "_KeRaiseIrql"}
	act.remaining = req.cycles
	act.onComplete = t.onRaisedDoneFn
	k.occupy(act)
	// The dispatch-loop pass this replaces would find nothing above the
	// section's level (see serveOne) and land in resumeTop; arm the
	// completion clock directly instead.
	k.resumeTop()
	return false
}

// beginWait implements KeWaitForSingleObject semantics for the current
// thread, including the nil-object pure-timeout form used by Sleep.
func (k *Kernel) beginWait(t *Thread, req *request) {
	if req.obj != nil && req.obj.poll(t) {
		t.resumeVal = resumeMsg{status: WaitSuccess}
		t.needsResume = true
		return
	}
	if req.obj == nil && req.timeout == 0 {
		// Sleep(0): a pure yield.
		t.resumeVal = resumeMsg{status: WaitTimedOut}
		t.needsResume = true
		t.state = threadReady
		t.readiedAt = k.now()
		k.pushReadyBack(t)
		k.current = nil
		return
	}
	t.state = threadWaiting
	t.waitObj = req.obj
	if req.obj != nil {
		req.obj.addWaiter(t)
	}
	if req.timeout >= 0 {
		t.waitTimeoutEv = k.eng.After(req.timeout, t.labelWaitTimeout, t.onWaitTimeoutFn)
	}
	k.current = nil
}

// beginWaitAny implements KeWaitForMultipleObjects (WaitAny) for the
// current thread: satisfy immediately from the first signaled object, or
// register on all of them.
func (k *Kernel) beginWaitAny(t *Thread, req *request) {
	for i, o := range req.objs {
		if o.poll(t) {
			t.resumeVal = resumeMsg{status: WaitSuccess, index: i}
			t.needsResume = true
			return
		}
	}
	t.state = threadWaiting
	t.waitAny = req.objs
	for _, o := range req.objs {
		o.addWaiter(t)
	}
	if req.timeout >= 0 {
		t.waitTimeoutEv = k.eng.After(req.timeout, t.labelWaitAny, t.onWaitTimeoutFn)
	}
	k.current = nil
}

// onWaitTimeout expires a timed wait.
func (k *Kernel) onWaitTimeout(t *Thread) {
	t.waitTimeoutEv = nil
	if t.state != threadWaiting {
		return // raced with a wake
	}
	if t.waitObj != nil {
		t.waitObj.removeWaiter(t)
		t.waitObj = nil
	}
	if t.waitAny != nil {
		for _, o := range t.waitAny {
			o.removeWaiter(t)
		}
		t.waitAny = nil
	}
	t.state = threadReady
	t.readiedAt = k.now()
	t.resumeVal = resumeMsg{status: WaitTimedOut}
	t.needsResume = true
	k.pushReadyBack(t)
	if k.probe.ThreadReadied != nil {
		k.probe.ThreadReadied(t, t.readiedAt)
	}
	k.maybeRun()
}

// Shutdown unwinds every live thread goroutine. The simulation must not be
// advanced afterwards. It is safe to call multiple times.
func (k *Kernel) Shutdown() {
	for _, t := range k.threads {
		if t.terminated {
			continue
		}
		t.terminated = true
		t.resume <- resumeMsg{kill: true}
		<-t.dead
	}
}
