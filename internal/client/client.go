// Package client is the typed client of the latency-campaign service: it
// speaks internal/api over HTTP with jittered exponential backoff,
// honours the server's Retry-After hints, and resumes interrupted event
// watches from the last sequence number it saw.
//
// Retrying a submission is always safe: campaigns are content-addressed,
// so a retried POST lands on the same job the first attempt created (or
// joins it, if the first attempt's response was lost after the server
// accepted it) — the service's idempotency is what makes the aggressive
// retry policy sound.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"wdmlat/internal/api"
)

// Options tunes a Client. The zero value gives sane production defaults;
// tests inject Sleep and Rand to make backoff observable and instant.
type Options struct {
	// HTTP is the underlying client (default http.DefaultClient).
	HTTP *http.Client
	// Retries is the maximum number of attempts per request (default 8).
	Retries int
	// BaseDelay seeds the exponential backoff (default 100ms); MaxDelay
	// caps it (default 5s). Attempt n waits a jittered duration in
	// [d/2, d] for d = min(BaseDelay·2ⁿ, MaxDelay), raised to any
	// Retry-After the server sent.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Rand supplies jitter in [0,1) (default math/rand.Float64).
	Rand func() float64
	// Sleep waits between attempts (default a context-aware timer).
	// Tests replace it to record the chosen delays.
	Sleep func(ctx context.Context, d time.Duration) error
}

// Client talks to one latency-campaign server.
type Client struct {
	base string
	opts Options
}

// New returns a client for the server at base (e.g. "http://host:8080").
func New(base string, opts Options) *Client {
	if opts.HTTP == nil {
		opts.HTTP = http.DefaultClient
	}
	if opts.Retries <= 0 {
		opts.Retries = 8
	}
	if opts.BaseDelay <= 0 {
		opts.BaseDelay = 100 * time.Millisecond
	}
	if opts.MaxDelay <= 0 {
		opts.MaxDelay = 5 * time.Second
	}
	if opts.Rand == nil {
		opts.Rand = rand.Float64
	}
	if opts.Sleep == nil {
		opts.Sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	return &Client{base: strings.TrimRight(base, "/"), opts: opts}
}

// StatusError is a non-2xx response that was not retried away: the HTTP
// status plus the server's error message.
type StatusError struct {
	Code    int
	Message string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.Code, e.Message)
}

// retryable reports whether a response status is worth another attempt:
// explicit backpressure (429) and server-side transient errors (5xx).
func retryable(code int) bool {
	return code == http.StatusTooManyRequests || code >= 500
}

// backoff returns the delay before attempt (0-based) attempt+1, raised to
// retryAfter when the server supplied one. The schedule itself lives in
// Backoff, shared with the fleet worker loop.
func (c *Client) backoff(attempt int, retryAfter time.Duration) time.Duration {
	return Backoff{Base: c.opts.BaseDelay, Max: c.opts.MaxDelay, Rand: c.opts.Rand}.Delay(attempt, retryAfter)
}

// parseRetryAfter reads a Retry-After header (delta-seconds or HTTP-date).
func parseRetryAfter(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := time.Until(at); d > 0 {
			return d
		}
	}
	return 0
}

// do performs one logical request with retries, returning the response
// body of the first conclusive attempt. Connection errors and retryable
// statuses back off and retry; other statuses return a *StatusError.
func (c *Client) do(ctx context.Context, method, path string, body []byte) ([]byte, error) {
	var lastErr error
	var retryAfter time.Duration
	for attempt := 0; attempt < c.opts.Retries; attempt++ {
		if attempt > 0 {
			if err := c.opts.Sleep(ctx, c.backoff(attempt-1, retryAfter)); err != nil {
				return nil, err
			}
		}
		data, ra, err := c.attempt(ctx, method, path, body)
		if err == nil {
			return data, nil
		}
		lastErr, retryAfter = err, ra
		var se *StatusError
		if isStatusError(err, &se) && !retryable(se.Code) {
			return nil, err
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	return nil, fmt.Errorf("client: giving up after %d attempts: %w", c.opts.Retries, lastErr)
}

func isStatusError(err error, out **StatusError) bool {
	se, ok := err.(*StatusError)
	if ok {
		*out = se
	}
	return ok
}

// attempt performs one HTTP round trip.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte) ([]byte, time.Duration, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.opts.HTTP.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return data, 0, err
	}
	msg := strings.TrimSpace(string(data))
	var apiErr api.Error
	if json.Unmarshal(data, &apiErr) == nil && apiErr.Message != "" {
		msg = apiErr.Message
	}
	return nil, parseRetryAfter(resp), &StatusError{Code: resp.StatusCode, Message: msg}
}

// Submit posts a campaign and returns its status. Safe to retry (and it
// does): the campaign ID is a pure function of spec.
func (c *Client) Submit(ctx context.Context, spec *api.CampaignSpec) (api.Status, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return api.Status{}, fmt.Errorf("client: encoding spec: %w", err)
	}
	return c.statusCall(ctx, http.MethodPost, "/v1/campaigns", body)
}

// Status fetches a campaign's current status.
func (c *Client) Status(ctx context.Context, id string) (api.Status, error) {
	return c.statusCall(ctx, http.MethodGet, "/v1/campaigns/"+id, nil)
}

// Cancel requests cancellation of a campaign and returns its status.
func (c *Client) Cancel(ctx context.Context, id string) (api.Status, error) {
	return c.statusCall(ctx, http.MethodDelete, "/v1/campaigns/"+id, nil)
}

func (c *Client) statusCall(ctx context.Context, method, path string, body []byte) (api.Status, error) {
	data, err := c.do(ctx, method, path, body)
	if err != nil {
		return api.Status{}, err
	}
	var st api.Status
	if err := json.Unmarshal(data, &st); err != nil {
		return api.Status{}, fmt.Errorf("client: decoding status: %w", err)
	}
	return st, nil
}

// Result fetches a finished campaign's result stream: the exact
// concatenated core.EncodeResult bytes, one document per cell in
// submission order. The campaign must be in state done (the server
// answers 409 while it is still queued or running — Watch first).
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	return c.do(ctx, http.MethodGet, "/v1/campaigns/"+id+"/result", nil)
}

// Watch follows a campaign's event stream until it reaches a terminal
// state, invoking onEvent (which may be nil) for every event exactly once.
// A dropped connection resumes from the next unseen sequence number with
// the same backoff policy as requests; consecutive failures beyond
// Options.Retries abort the watch.
func (c *Client) Watch(ctx context.Context, id string, onEvent func(api.Event)) (api.Status, error) {
	next := 0
	failures := 0
	var lastErr error
	for failures < c.opts.Retries {
		terminal, err := c.streamEvents(ctx, id, &next, onEvent)
		if terminal {
			return c.Status(ctx, id)
		}
		if ctx.Err() != nil {
			return api.Status{}, ctx.Err()
		}
		lastErr = err
		var se *StatusError
		if isStatusError(err, &se) && !retryable(se.Code) {
			return api.Status{}, err
		}
		if err := c.opts.Sleep(ctx, c.backoff(failures, 0)); err != nil {
			return api.Status{}, err
		}
		failures++
	}
	return api.Status{}, fmt.Errorf("client: watch gave up after %d attempts: %w", c.opts.Retries, lastErr)
}

// streamEvents opens one events connection from *next and consumes it,
// advancing *next past every decoded event. It reports whether a terminal
// state event was seen.
func (c *Client) streamEvents(ctx context.Context, id string, next *int, onEvent func(api.Event)) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/v1/campaigns/%s/events?from=%d", c.base, id, *next), nil)
	if err != nil {
		return false, err
	}
	resp, err := c.opts.HTTP.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		msg := strings.TrimSpace(string(data))
		var apiErr api.Error
		if json.Unmarshal(data, &apiErr) == nil && apiErr.Message != "" {
			msg = apiErr.Message
		}
		return false, &StatusError{Code: resp.StatusCode, Message: msg}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev api.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return false, fmt.Errorf("client: decoding event: %w", err)
		}
		if ev.Seq < *next {
			continue // replay overlap after a resume; already delivered
		}
		*next = ev.Seq + 1
		if onEvent != nil {
			onEvent(ev)
		}
		if ev.Type == api.EventState && api.TerminalState(ev.State) {
			return true, nil
		}
	}
	err = sc.Err()
	if err == nil {
		err = io.ErrUnexpectedEOF // stream ended without a terminal event
	}
	return false, err
}
