package main

import (
	"strings"
	"testing"
)

func res(ns float64, allocs float64, hasAlloc bool) benchResult {
	return benchResult{NsPerOp: ns, AllocsOp: allocs, hasNs: true, hasAlloc: hasAlloc}
}

// A 0 ns/op baseline must not produce an Inf/NaN ratio, a garbage speedup
// column, or a spurious time-regression verdict.
func TestCompareRowZeroBaseline(t *testing.T) {
	v := compareRow("BenchmarkX", res(0, 0, false), res(57.3, 0, false), 0.10)
	if v.speedup != "n/a" {
		t.Errorf("speedup = %q, want n/a", v.speedup)
	}
	if len(v.failures) != 0 || v.status != "" {
		t.Errorf("zero baseline flagged a regression: status %q, failures %v",
			v.status, v.failures)
	}
	for _, cell := range []string{v.speedup, v.allocs, v.status} {
		if strings.Contains(cell, "Inf") || strings.Contains(cell, "NaN") {
			t.Errorf("cell %q leaks a degenerate ratio", cell)
		}
	}
}

// Both sides zero: still no verdict, still "n/a".
func TestCompareRowBothZero(t *testing.T) {
	v := compareRow("BenchmarkX", res(0, 0, false), res(0, 0, false), 0.10)
	if v.speedup != "n/a" || len(v.failures) != 0 {
		t.Errorf("both-zero row: speedup %q failures %v", v.speedup, v.failures)
	}
}

// Zero new time with a real baseline: the ratio would be +Inf, so the column
// reads "n/a"; a faster benchmark is never a regression.
func TestCompareRowZeroNew(t *testing.T) {
	v := compareRow("BenchmarkX", res(42, 0, false), res(0, 0, false), 0.10)
	if v.speedup != "n/a" || len(v.failures) != 0 {
		t.Errorf("zero-new row: speedup %q failures %v", v.speedup, v.failures)
	}
}

// The zero-baseline guard must not mask real regressions elsewhere.
func TestCompareRowTimeRegressionStillCaught(t *testing.T) {
	v := compareRow("BenchmarkY", res(100, 2, true), res(150, 2, true), 0.10)
	if !strings.Contains(v.status, "REGRESSION(time)") || len(v.failures) != 1 {
		t.Fatalf("50%% slowdown not flagged: status %q failures %v", v.status, v.failures)
	}
	if !strings.Contains(v.failures[0], "BenchmarkY") {
		t.Errorf("failure line missing benchmark name: %q", v.failures[0])
	}
	if v.speedup != "0.67x" {
		t.Errorf("speedup = %q, want 0.67x", v.speedup)
	}
}

// The allocs gate is ratio-free and applies even when the time baseline is
// zero — alloc growth must still fail the gate.
func TestCompareRowAllocRegressionWithZeroTimeBaseline(t *testing.T) {
	v := compareRow("BenchmarkZ", res(0, 0, true), res(10, 3, true), 0.10)
	if !strings.Contains(v.status, "REGRESSION(allocs)") || len(v.failures) != 1 {
		t.Fatalf("alloc growth not flagged: status %q failures %v", v.status, v.failures)
	}
	if v.speedup != "n/a" {
		t.Errorf("speedup = %q, want n/a", v.speedup)
	}
	if v.allocs != "0 -> 3" {
		t.Errorf("allocs cell = %q, want 0 -> 3", v.allocs)
	}
}

// Within-tolerance slowdown passes.
func TestCompareRowWithinTolerance(t *testing.T) {
	v := compareRow("BenchmarkW", res(100, 1, true), res(105, 1, true), 0.10)
	if len(v.failures) != 0 || v.status != "" {
		t.Errorf("5%% slowdown should pass: status %q failures %v", v.status, v.failures)
	}
	if v.speedup != "0.95x" {
		t.Errorf("speedup = %q, want 0.95x", v.speedup)
	}
}
