// Package causetool implements the paper's latency cause analysis tool
// (§2.3): it patches the PIT vector of the IDT with a hook that records the
// interrupted context (instruction pointer + code segment in the paper;
// module + function frames here, i.e. "symbols available") and the TSC into
// a circular buffer on every clock interrupt. When the latency measurement
// tool reports a latency above a preset threshold, the tool dumps the
// buffer as an episode; post-mortem analysis aggregates the samples into
// the module+function traces of Table 4 — obtained "in spite of the lack of
// source code" for the OS being diagnosed.
package causetool

import (
	"fmt"
	"io"
	"strings"

	"wdmlat/internal/cpu"
	"wdmlat/internal/kernel"
	"wdmlat/internal/sim"
)

// Source selects how samples are taken.
type Source int

const (
	// PITHook patches the PIT vector (the original §2.3 tool): samples
	// arrive at the clock rate and are blind inside interrupt-masked
	// windows.
	PITHook Source = iota
	// PerfCounterNMI programs a performance counter to deliver NMIs on
	// CPU_CLOCKS_UNHALTED overflow (§6.1 future work): sub-millisecond
	// resolution, and samples land even inside masked windows and ISRs.
	PerfCounterNMI
)

// String implements fmt.Stringer.
func (s Source) String() string {
	switch s {
	case PITHook:
		return "PIT IDT hook"
	case PerfCounterNMI:
		return "perf-counter NMI"
	default:
		return "Source(?)"
	}
}

// Sample is one hook observation: what was on-CPU when the sampling
// interrupt arrived. Stack is populated when stack walking is enabled
// (§6.1: "walk the stack so as to generate call trees instead of isolated
// instruction pointer samples"), outermost frame first.
type Sample struct {
	TSC   sim.Time
	Frame cpu.Frame
	Stack []cpu.Frame
}

// Episode is a dump of the circular buffer triggered by a long latency.
type Episode struct {
	Number    int
	At        sim.Time   // when the long latency was reported
	Latency   sim.Cycles // the triggering latency
	Samples   []Sample   // buffer contents covering the latency window
	Truncated bool       // ring was smaller than the window
}

// FrameCount is one line of the paper's post-mortem analysis.
type FrameCount struct {
	Frame cpu.Frame
	Count int
}

// Options configures the tool.
type Options struct {
	// RingSize is the circular buffer capacity in samples (default 64).
	RingSize int
	// Threshold is the latency at or above which an episode is dumped
	// (default 5 ms at the kernel's clock).
	Threshold sim.Cycles
	// MaxEpisodes bounds retained episodes (default 64); later episodes
	// are counted but not stored.
	MaxEpisodes int
	// HookCost is the hook's per-interrupt footprint in cycles (default
	// 80 — the tool is designed to be nearly free).
	HookCost sim.Cycles
	// Source selects PIT hooking (default, the published tool) or
	// perf-counter NMI sampling (§6.1).
	Source Source
	// SamplePeriod is the NMI sampling period (default 0.25 ms at the
	// kernel clock; ignored for the PIT hook, which samples every tick).
	SamplePeriod sim.Cycles
	// WalkStack records full call stacks instead of single frames (§6.1).
	WalkStack bool
}

// Tool is an attached cause analyzer.
type Tool struct {
	k    *kernel.Kernel
	opts Options

	ring   []Sample
	head   int
	filled bool

	episodes   []Episode
	triggered  uint64
	samples    uint64
	lastDumpAt sim.Time
	unhook     func()
	sampler    *kernel.PerfCounterSampler
}

// Attach hooks the machine's clock vector. The caller is responsible for
// respecting the OS rules: patching the IDT requires the Windows 9x legacy
// interface (the Lab only attaches the tool on personalities that allow it,
// exactly as the paper could not do this on NT without source access).
func Attach(k *kernel.Kernel, opts Options) *Tool {
	if opts.RingSize <= 0 {
		opts.RingSize = 64
	}
	if opts.Threshold <= 0 {
		opts.Threshold = k.CPU().Freq().FromMillis(5)
	}
	if opts.MaxEpisodes <= 0 {
		opts.MaxEpisodes = 64
	}
	if opts.HookCost <= 0 {
		opts.HookCost = 80
	}
	if opts.SamplePeriod <= 0 {
		opts.SamplePeriod = k.CPU().Freq().FromMillis(0.25)
	}
	t := &Tool{
		k:    k,
		opts: opts,
		ring: make([]Sample, opts.RingSize),
	}
	switch opts.Source {
	case PITHook:
		t.unhook = k.CPU().Hook(k.ClockVector(), t.hook)
	case PerfCounterNMI:
		k.SetNMIHandler(t.nmiSample)
		t.sampler = k.NewPerfCounterSampler(opts.SamplePeriod)
		t.sampler.Start()
	}
	return t
}

// Detach restores the original IDT entry / stops the performance counter.
func (t *Tool) Detach() {
	if t.unhook != nil {
		t.unhook()
		t.unhook = nil
	}
	if t.sampler != nil {
		t.sampler.Stop()
		t.sampler = nil
		t.k.SetNMIHandler(nil)
	}
}

// hook runs on every PIT interrupt, ahead of the OS clock ISR. The frame it
// records is the context the interrupt cut into: the next stack frame below
// the clock ISR itself, or the running thread, or idle.
func (t *Tool) hook(now sim.Time, chain cpu.Handler) {
	t.k.CPU().AddCharge(t.opts.HookCost)
	t.record()
	chain(now)
}

// nmiSample runs at NMI level from the perf-counter overflow (§6.1).
func (t *Tool) nmiSample(now sim.Time) {
	t.k.CPU().AddCharge(t.opts.HookCost)
	t.record()
}

// record stores one sample into the ring.
func (t *Tool) record() {
	c := t.k.CPU()
	s := Sample{TSC: c.TSC(), Frame: t.interruptedFrame()}
	if t.opts.WalkStack {
		st := c.Stack()
		if len(st) > 0 {
			st = st[:len(st)-1] // drop the sampler's own frame
		}
		if len(st) == 0 && s.Frame != cpu.IdleFrame {
			st = []cpu.Frame{s.Frame}
		}
		s.Stack = st
	}
	i := t.head
	t.ring[i] = s
	t.head = (i + 1) % len(t.ring)
	if t.head == 0 {
		t.filled = true
	}
	t.samples++
}

// interruptedFrame resolves "what was executing when the clock fired".
func (t *Tool) interruptedFrame() cpu.Frame {
	st := t.k.CPU().Stack()
	// The top frame is the clock ISR we are inside; the one below it is
	// the interrupted context (a DPC, an overhead episode, a nested ISR).
	if len(st) >= 2 {
		return st[len(st)-2]
	}
	if th := t.k.Current(); th != nil {
		return cpu.Frame{Module: th.Name, Function: ""}
	}
	return cpu.IdleFrame
}

// OnLatency is the trigger input: the latency measurement tool calls it for
// every completed thread-latency sample. Latencies at or above the
// threshold dump the ring.
func (t *Tool) OnLatency(lat sim.Cycles) {
	if lat < t.opts.Threshold {
		return
	}
	t.triggered++
	if len(t.episodes) >= t.opts.MaxEpisodes {
		return
	}
	now := t.k.CPU().TSC()
	window := now.Add(-lat)
	// Both measurement threads report the same long window (the 28 and 24
	// wakeups cross the threshold together); dump each window once.
	if len(t.episodes) > 0 && window < t.lastDumpAt {
		return
	}
	t.lastDumpAt = now
	ep := Episode{
		Number:  len(t.episodes),
		At:      now,
		Latency: lat,
	}
	// Collect ring samples inside the latency window, oldest first.
	n := len(t.ring)
	start := 0
	if t.filled {
		start = t.head
	} else {
		n = t.head
	}
	for i := 0; i < n; i++ {
		s := t.ring[(start+i)%len(t.ring)]
		if s.TSC >= window && s.TSC <= now {
			ep.Samples = append(ep.Samples, s)
		}
	}
	// If the window extends past the oldest retained sample, note it.
	if len(ep.Samples) > 0 {
		oldest := t.ring[start%len(t.ring)]
		if t.filled && oldest.TSC > window {
			ep.Truncated = true
		}
	}
	t.episodes = append(t.episodes, ep)
}

// Episodes returns the captured episodes.
func (t *Tool) Episodes() []Episode { return t.episodes }

// Triggered returns how many latencies crossed the threshold (captured or
// not).
func (t *Tool) Triggered() uint64 { return t.triggered }

// Samples returns the total hook observations.
func (t *Tool) Samples() uint64 { return t.samples }

// Analysis aggregates an episode's samples per frame, in first-appearance
// order — the paper's "N samples in MODULE function FUNC" lines.
func (e Episode) Analysis() []FrameCount {
	var out []FrameCount
	index := map[cpu.Frame]int{}
	for _, s := range e.Samples {
		if i, ok := index[s.Frame]; ok {
			out[i].Count++
			continue
		}
		index[s.Frame] = len(out)
		out = append(out, FrameCount{Frame: s.Frame, Count: 1})
	}
	return out
}

// TreeCount is one aggregated call tree from stack-walking samples.
type TreeCount struct {
	Path  []cpu.Frame
	Count int
}

// CallTrees aggregates stack-walking samples by identical call path, in
// first-appearance order — the §6.1 "call trees instead of isolated
// instruction pointer samples".
func (e Episode) CallTrees() []TreeCount {
	var out []TreeCount
	index := map[string]int{}
	for _, s := range e.Samples {
		if len(s.Stack) == 0 {
			continue
		}
		key := pathKey(s.Stack)
		if i, ok := index[key]; ok {
			out[i].Count++
			continue
		}
		index[key] = len(out)
		out = append(out, TreeCount{Path: s.Stack, Count: 1})
	}
	return out
}

func pathKey(st []cpu.Frame) string {
	var b strings.Builder
	for _, f := range st {
		b.WriteString(f.Module)
		b.WriteByte('!')
		b.WriteString(f.Function)
		b.WriteByte(';')
	}
	return b.String()
}

// FormatPath renders a call path as "A!_f -> B!_g".
func FormatPath(path []cpu.Frame) string {
	parts := make([]string, len(path))
	for i, f := range path {
		fn := f.Function
		if fn == "" {
			fn = "unknown"
		}
		if f.Module == "" {
			parts[i] = "idle"
			continue
		}
		parts[i] = f.Module + "!" + fn
	}
	return strings.Join(parts, " -> ")
}

// Format renders one episode in the Table 4 layout.
func (e Episode) Format(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "Analysis of latency episode number %d\n", e.Number)
	total := 0
	for _, fc := range e.Analysis() {
		fn := fc.Frame.Function
		if fn == "" {
			fn = "unknown"
		}
		fmt.Fprintf(&b, "%d samples in %s function %s\n", fc.Count, fc.Frame.Module, fn)
		total += fc.Count
	}
	b.WriteString(strings.Repeat("-", 49) + "\n")
	fmt.Fprintf(&b, "%d total samples in episode\n", total)
	if trees := e.CallTrees(); len(trees) > 0 {
		b.WriteString("call trees:\n")
		for _, tc := range trees {
			fmt.Fprintf(&b, "  %d x %s\n", tc.Count, FormatPath(tc.Path))
		}
	}
	if e.Truncated {
		b.WriteString("(ring buffer shorter than latency window; oldest samples lost)\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// FormatAll renders every retained episode.
func (t *Tool) FormatAll(w io.Writer) error {
	for i, e := range t.episodes {
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if err := e.Format(w); err != nil {
			return err
		}
	}
	return nil
}
