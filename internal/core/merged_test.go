package core

import (
	"reflect"
	"testing"
	"time"

	"wdmlat/internal/ospersona"
	"wdmlat/internal/workload"
)

// TestReplicaSeedDecorrelation is the regression test for the additive
// seed scheme this package used to ship (base + i*7919): under it,
// RunMerged at base 3 and RunMerged at base 7922 shared entire replica
// streams (3 + 1*7919 == 7922 + 0*7919). The SplitMix64 derivation must
// keep the replica seed sets of stride-offset bases fully disjoint.
func TestReplicaSeedDecorrelation(t *testing.T) {
	const runs = 16
	bases := []uint64{3, 3 + 7919, 3 + 2*7919, 7, 7 + 7919}
	seen := map[uint64]string{}
	for _, base := range bases {
		for i := 0; i < runs; i++ {
			s := ReplicaSeed(base, i)
			if prev, dup := seen[s]; dup && prev != "" {
				t.Fatalf("replica seed %d shared between base/replica %s and base %d replica %d",
					s, prev, base, i)
			}
			seen[s] = ""
		}
	}
	if len(seen) != len(bases)*runs {
		t.Fatalf("expected %d distinct replica seeds, got %d", len(bases)*runs, len(seen))
	}
	// Replica 0 keeps the base seed, so a single-run merge equals a plain
	// run at the same seed.
	if ReplicaSeed(42, 0) != 42 {
		t.Fatalf("replica 0 must keep the base seed")
	}
	// And the specific historical aliasing must be gone.
	if ReplicaSeed(3, 1) == 7922 {
		t.Fatalf("additive aliasing resurfaced: ReplicaSeed(3,1) == 7922")
	}
}

// TestRunMergedJobsDeterministic: pooled replicas must merge to the same
// result whether they ran serially or on a wide pool. DeepEqual over the
// histograms is exact because the merge order (replica index) is fixed.
func TestRunMergedJobsDeterministic(t *testing.T) {
	cfg := RunConfig{
		OS:       ospersona.Win98,
		Workload: workload.Business,
		Duration: 10 * time.Second,
		Seed:     9,
	}
	serial := RunMergedJobs(cfg, 4, 1)
	wide := RunMergedJobs(cfg, 4, 8)
	if serial.Samples != wide.Samples || serial.Observed != wide.Observed {
		t.Fatalf("pooled totals differ: serial %d/%d, wide %d/%d",
			serial.Samples, serial.Observed, wide.Samples, wide.Observed)
	}
	if !reflect.DeepEqual(serial.DpcInt, wide.DpcInt) ||
		!reflect.DeepEqual(serial.Thread, wide.Thread) ||
		!reflect.DeepEqual(serial.HwToThread, wide.HwToThread) {
		t.Fatalf("pooled histograms differ between jobs=1 and jobs=8")
	}
	if serial.Counters != wide.Counters {
		t.Fatalf("pooled counters differ between jobs=1 and jobs=8")
	}
}

// TestRunMergedSingleRunEqualsRun: runs <= 1 must be a plain Run.
func TestRunMergedSingleRunEqualsRun(t *testing.T) {
	cfg := RunConfig{
		OS:       ospersona.NT4,
		Workload: workload.Web,
		Duration: 5 * time.Second,
		Seed:     13,
	}
	a := Run(cfg)
	b := RunMerged(cfg, 1)
	if !reflect.DeepEqual(a.DpcInt, b.DpcInt) || a.Samples != b.Samples {
		t.Fatalf("RunMerged(cfg, 1) differs from Run(cfg)")
	}
}
